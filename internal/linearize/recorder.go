package linearize

import (
	"sync"
	"sync/atomic"
)

// Recorder collects invoke/response events from concurrent clients into
// a single history, ordered by a shared logical clock. Each client owns
// a private event log (no contention beyond the clock increment); Merge
// combines them after the run.
type Recorder struct {
	clock   atomic.Int64
	mu      sync.Mutex
	clients []*ClientLog
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Now draws the next logical timestamp. Every call returns a distinct,
// strictly increasing value, so histories never contain ties.
func (r *Recorder) Now() int64 { return r.clock.Add(1) }

// Peek returns the current clock value without advancing it — a progress
// signal for chaos goroutines that want to fire mid-workload.
func (r *Recorder) Peek() int64 { return r.clock.Load() }

// Client registers a new client log. id labels the ops it records.
func (r *Recorder) Client(id int) *ClientLog {
	c := &ClientLog{rec: r, id: id}
	r.mu.Lock()
	r.clients = append(r.clients, c)
	r.mu.Unlock()
	return c
}

// History merges all client logs. Ops still open (Begin without End) are
// recorded as Incomplete. Not safe to call concurrently with recording.
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ops []Op
	for _, c := range r.clients {
		for _, op := range c.ops {
			if op.Input == nil { // Drop tombstone
				continue
			}
			ops = append(ops, op)
		}
	}
	return ops
}

// ClientLog records one client's operations. Exactly one goroutine may
// drive a ClientLog, mirroring the session contract.
type ClientLog struct {
	rec *Recorder
	id  int
	ops []Op
}

// OpID names a Begin'd operation within its client log.
type OpID int

// Begin records an invoke event and returns a handle for End.
func (c *ClientLog) Begin(input any) OpID {
	c.ops = append(c.ops, Op{
		ClientID: c.id,
		Call:     c.rec.Now(),
		Return:   Incomplete,
		Input:    input,
	})
	return OpID(len(c.ops) - 1)
}

// End records the response event for id. The timestamp is drawn at call
// time, so End must be called only after the operation's effect is
// known (e.g. after CompletePending surfaced its Result).
func (c *ClientLog) End(id OpID, output any) {
	c.ops[id].Return = c.rec.Now()
	c.ops[id].Output = output
}

// Drop removes a recorded operation from the history (an operation that
// provably had no effect and observed nothing, e.g. a failed read).
func (c *ClientLog) Drop(id OpID) {
	c.ops[id].Input = nil // tombstone; filtered by History via Client merge
	c.ops[id].Return = -1
}

// History returns this client's ops (recorded order).
func (c *ClientLog) History() []Op { return c.ops }
