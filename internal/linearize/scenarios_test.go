package linearize

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/testutil"
)

// The scenarios below replay seeded pseudo-random schedules against real
// stores configured so that specific interleaving machinery is on the hot
// path: the pure in-memory region, read-only copy-to-tail (RCU),
// fuzzy-region RMW deferral, pending-I/O continuations on a faulty
// device, concurrent index resize, and checkpoint/recover. Every history
// must check linearizable. `make linearize` runs them under -race.

const checkBudget = 20 * time.Second

// seeds gives each scenario a few independent schedules. Keep the list
// short: the Makefile budget covers seeds x scenarios under -race.
var seeds = []int64{1, 42, 777}

func checkHistory(t *testing.T, store *faster.Store, history []Op) {
	t.Helper()
	r := CheckKV(history, checkBudget)
	switch r.Outcome {
	case Illegal:
		t.Fatalf("history is NOT linearizable (partition %d, %d states explored)\nminimized counterexample:\n%s",
			r.Partition, r.States, Format(KVModel(), r.Counterexample))
	case Unknown:
		t.Fatalf("checker exceeded its %v budget (partition %d, longest prefix %d/%d)",
			checkBudget, r.Partition, r.LongestPrefix, len(history))
	}
	if store != nil {
		st := store.Stats()
		t.Logf("ops=%d inPlace=%d appends=%d fuzzy=%d pendingIO=%d failedCAS=%d states=%d",
			st.Operations, st.InPlace, st.Appends, st.FuzzyRMWs, st.PendingIOs, st.FailedCAS, r.States)
	}
}

func openScenarioStore(t *testing.T, cfg faster.Config) *faster.Store {
	t.Helper()
	if cfg.Ops == nil {
		cfg.Ops = faster.SumOps{}
	}
	if cfg.IndexBuckets == 0 {
		cfg.IndexBuckets = 1 << 9
	}
	s, err := faster.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestLinearizableMemory exercises the pure in-memory allocator: every
// update is in-place or an in-memory RCU, nothing flushes or evicts.
func TestLinearizableMemory(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := openScenarioStore(t, faster.Config{
				Mode:     hlog.ModeInMemory,
				PageBits: 12,
			})
			h, _ := RunWorkload(s, Workload{
				Clients: 6, Ops: 80, Keys: 5, Seed: seed,
			})
			checkHistory(t, s, h)
		})
	}
}

// TestLinearizableReadOnlyCopy keeps shifting the read-only offset to the
// tail, so updates constantly land on read-only records and take the
// copy-to-tail (RCU) path while readers race the copies.
func TestLinearizableReadOnlyCopy(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := openScenarioStore(t, faster.Config{
				Mode:        hlog.ModeHybrid,
				PageBits:    12,
				BufferPages: 8,
				Device:      device.NewMem(device.MemConfig{}),
			})
			h, _ := RunWorkload(s, Workload{
				Clients: 6, Ops: 80, Keys: 5, Seed: seed,
				// Every client shifts the read-only offset to the tail
				// every few operations, so updates keep landing on
				// read-only records and must copy to the tail.
				Interleave: func(client, n int) {
					if n%4 == 0 {
						s.Log().ShiftReadOnlyToTail()
					}
				},
			})
			if st := s.Stats(); st.Appends < 100 {
				t.Errorf("scenario did not force copy-to-tail (stats: %+v)", st)
			}
			checkHistory(t, s, h)
		})
	}
}

// TestLinearizableFuzzyRMW drives an RMW-heavy mix while the read-only
// offset races ahead of the safe read-only offset, forcing RMWs into the
// fuzzy region where they must defer (opRMWRetry) rather than update a
// record that might be mid-flush.
func TestLinearizableFuzzyRMW(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := openScenarioStore(t, faster.Config{
				Mode:        hlog.ModeHybrid,
				PageBits:    12,
				BufferPages: 8,
				Device:      device.NewMem(device.MemConfig{}),
				// A long refresh interval widens the window between the
				// read-only shift and every session observing it — the
				// fuzzy region lives in that window.
				RefreshInterval: 1 << 20,
			})
			h, _ := RunWorkload(s, Workload{
				Clients: 6, Ops: 80, Keys: 5, Seed: seed,
				ReadPct: 20, UpsertPct: 8, RMWPct: 70, DeletePct: 2,
				// Shifting from inside the schedule leaves the other
				// five sessions unrefreshed, so the safe read-only
				// offset trails the shift and their next RMWs land in
				// the fuzzy region and must defer.
				Interleave: func(client, n int) {
					if n%8 == 0 {
						s.Log().ShiftReadOnlyToTail()
					}
				},
			})
			if st := s.Stats(); st.FuzzyRMWs == 0 {
				t.Errorf("scenario produced no fuzzy deferrals (stats: %+v)", st)
			}
			checkHistory(t, s, h)
		})
	}
}

// TestLinearizablePendingIO uses an append-only log with a tiny buffer
// over a fault-injecting device, so every update appends, pages evict
// constantly, and reads/RMWs chase records onto storage and complete
// asynchronously — some after transparent retries of injected transient
// faults, some failing outright (recorded as incomplete/no-ops).
func TestLinearizablePendingIO(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dev := device.NewFaulty(device.NewMem(device.MemConfig{}))
			dev.SeedFaults(uint64(seed), 0.05, 0)
			s := openScenarioStore(t, faster.Config{
				Mode:        hlog.ModeAppendOnly,
				PageBits:    9, // 512-byte pages: records spill to storage fast
				BufferPages: 4,
				Device:      dev,
			})
			// The wide key space leaves keys cold long enough to evict
			// before they are read again.
			h, _ := RunWorkload(s, Workload{
				Clients: 4, Ops: 150, Keys: 24, Seed: seed,
				PendingBatch: 6,
			})
			if st := s.Stats(); st.PendingIOs == 0 {
				t.Errorf("scenario did not exercise pending I/O (stats: %+v)", st)
			}
			checkHistory(t, s, h)
		})
	}
}

// TestLinearizableResize doubles the hash index repeatedly while traffic
// runs, exercising the split-chain rehash against concurrent CAS
// publishes.
func TestLinearizableResize(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := openScenarioStore(t, faster.Config{
				Mode:         hlog.ModeHybrid,
				PageBits:     12,
				BufferPages:  8,
				Device:       device.NewMem(device.MemConfig{}),
				IndexBuckets: 1 << 3, // tiny: long chains, real rehash work
			})
			rec := NewRecorder()
			// Each grow fires once the recorder clock shows another
			// quarter of the run's ~2*Clients*Ops events, so the grows
			// interleave with live traffic regardless of how fast the
			// schedule executes. (GrowIndex must run off-session, hence
			// Chaos rather than Interleave.)
			RecordWorkload(s, rec, Workload{
				Clients: 6, Ops: 80, Keys: 5, Seed: seed,
				Chaos: func(stop <-chan struct{}) {
					events := int64(2 * 6 * 80)
					for i := int64(1); i <= 4; i++ {
						for rec.Peek() < i*events/5 {
							select {
							case <-stop:
								return
							default:
								runtime.Gosched()
							}
						}
						if err := s.GrowIndex(); err != nil {
							t.Errorf("GrowIndex: %v", err)
							return
						}
					}
				},
			})
			checkHistory(t, s, rec.History())
		})
	}
}

// TestLinearizableCheckpointRecover takes a checkpoint in the middle of
// concurrent traffic, "crashes" (abandons the store), recovers from the
// checkpoint directory and the surviving device, and verifies the
// recovered state is a prefix-consistent cut of some linearization:
// everything acknowledged before the checkpoint began must survive;
// operations in flight across it may land on either side.
func TestLinearizableCheckpointRecover(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dev := device.NewMem(device.MemConfig{})
			dir := t.TempDir()
			cfg := faster.Config{
				Mode:        hlog.ModeHybrid,
				PageBits:    12,
				BufferPages: 8,
				Device:      dev,
				Ops:         faster.SumOps{},
			}
			s, err := faster.Open(cfg)
			if err != nil {
				t.Fatal(err)
			}

			rec := NewRecorder()
			var ckptStart, ckptEnd int64
			ckptDone := make(chan error, 1)
			quiesce := make(chan struct{})
			RecordWorkload(s, rec, Workload{
				Clients: 4, Ops: 80, Keys: 5, Seed: seed,
				// Once the checkpoint begins, each client races at most a
				// handful more operations against the drain and stops. The
				// crash window then holds a bounded set of in-flight
				// operations however slow the machine, keeping the
				// checker's incomplete-op search tractable.
				Quiesce: quiesce, QuiesceTail: 5,
				Chaos: func(stop <-chan struct{}) {
					// Fire mid-workload: wait until the recorder clock
					// shows roughly a third of the run's events. If the
					// workload outruns us the checkpoint still commits
					// after the last op, which only strengthens the check
					// (everything must survive).
					for rec.Peek() < 4*80*2/3 {
						select {
						case <-stop:
							goto checkpoint
						default:
							runtime.Gosched()
						}
					}
				checkpoint:
					ckptStart = rec.Now()
					close(quiesce)
					_, err := s.Checkpoint(dir)
					ckptEnd = rec.Now()
					ckptDone <- err
				},
			})
			if err := <-ckptDone; err != nil {
				t.Fatal(err)
			}
			pre := PruneCrashWindow(rec.History(), ckptStart, ckptEnd)
			s.Close() // the "crash": recovery trusts only the checkpoint cut

			r, err := faster.Recover(cfg, dir)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()

			// Observe the recovered state of every key, on the same
			// logical clock (all post-crash timestamps sort last).
			c := rec.Client(99)
			sess := r.StartSession()
			for k := uint64(1); k <= 5; k++ {
				key := make([]byte, 8)
				binary.LittleEndian.PutUint64(key, k)
				out := make([]byte, 8)
				id := c.Begin(KVInput{Kind: KVRead, Key: k})
				st, err := sess.Read(key, nil, out, nil)
				if st == faster.Pending {
					results := sess.CompletePending(true)
					if len(results) != 1 {
						t.Fatalf("CompletePending: %d results", len(results))
					}
					st, err = results[0].Status, results[0].Err
				}
				switch st {
				case faster.OK:
					c.End(id, KVOutput{Found: true, Val: binary.LittleEndian.Uint64(out)})
				case faster.NotFound:
					c.End(id, KVOutput{})
				default:
					t.Fatalf("post-recovery read of key %d: %v %v", k, st, err)
				}
			}
			sess.Close()

			checkHistory(t, r, append(pre, c.History()...))
		})
	}
}

// TestLinearizableBatch drives the mixed-kind ExecBatch path: every
// client issues its operations in windows of 7 (reads, upserts, RMWs
// and deletes interleaved) against a tiny hybrid log whose read-only
// offset keeps shifting to the tail. Batched upserts therefore land on
// read-only records and copy to the tail inside a shared reservation,
// while batched reads chase evicted records into pending I/O — the two
// regions the batch planner must cross without losing per-op
// linearizability.
func TestLinearizableBatch(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := openScenarioStore(t, faster.Config{
				Mode:        hlog.ModeHybrid,
				PageBits:    9, // 512-byte pages: records spill to storage fast
				BufferPages: 4,
				Device:      device.NewMem(device.MemConfig{}),
			})
			// The wide key space leaves keys cold long enough to evict
			// before a batched read chases them onto storage.
			h, _ := RunWorkload(s, Workload{
				Clients: 4, Ops: 200, Keys: 32, Seed: seed,
				Batch: 7, PendingBatch: 6,
				Interleave: func(client, n int) {
					if n%4 == 0 {
						s.Log().ShiftReadOnlyToTail()
					}
				},
			})
			st := s.Stats()
			if st.Appends == 0 || st.PendingIOs == 0 {
				t.Errorf("scenario did not span copy-to-tail and pending I/O (stats: %+v)", st)
			}
			checkHistory(t, s, h)
		})
	}
}

// TestLinearizableCompaction runs copy-forward compactions and epoch-safe
// truncations continuously under the full workload — reads, RMWs, deletes
// and pending I/O on a faulty device — so copied records race live CAS
// publishes and in-flight reads land below a moving begin address. No
// committed write may be lost and no deleted key may be resurrected by a
// stale copy-forward.
func TestLinearizableCompaction(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Read faults only: compaction's flush wait must be able to
			// persist the copied records.
			dev := device.NewFaulty(device.NewMem(device.MemConfig{}))
			dev.SeedFaults(uint64(seed), 0.05, 0)
			s := openScenarioStore(t, faster.Config{
				Mode:            hlog.ModeHybrid,
				PageBits:        9, // 512-byte pages: a deep stable region to reclaim
				BufferPages:     4,
				MutableFraction: 0.5,
				Device:          dev,
			})
			compactions := 0
			// Compact runs off-session (its epoch drain would deadlock
			// against a parked-nowhere workload session), hence Chaos.
			h, _ := RunWorkload(s, Workload{
				Clients: 4, Ops: 400, Keys: 32, Seed: seed,
				PendingBatch: 6,
				Chaos: func(stop <-chan struct{}) {
					for {
						select {
						case <-stop:
							return
						default:
						}
						s.Log().ShiftReadOnlyToTail()
						cut := s.Log().SafeReadOnlyAddress() &^ (s.Log().PageSize() - 1)
						if cut > s.Log().BeginAddress() {
							if _, err := s.Compact(cut); err == nil {
								compactions++
							}
						}
						runtime.Gosched()
					}
				},
			})
			if compactions == 0 {
				t.Error("scenario never completed a compaction")
			}
			if s.Log().BeginAddress() == 0 {
				t.Error("begin address never advanced")
			}
			t.Logf("compactions=%d begin=%#x", compactions, s.Log().BeginAddress())
			checkHistory(t, s, h)
		})
	}
}

// TestLinearizableAsyncIO is the stall-free-I/O scenario: every read
// and RMW goes through the store's io-worker pool (SubmitRead/SubmitRMW)
// and completes out of band on worker goroutines, racing a chaos
// goroutine that constantly shifts the read-only boundary and compacts
// the stable region — the continuation machinery (chain descents, fuzzy
// deferrals, truncation restarts) driven by workers instead of the
// submitting session. Deadline sheds are recorded as incomplete RMWs /
// dropped reads, so shed accounting is part of the checked history.
func TestLinearizableAsyncIO(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dev := device.NewFaulty(device.NewMem(device.MemConfig{}))
			dev.SeedFaults(uint64(seed), 0.05, 0)
			s := openScenarioStore(t, faster.Config{
				Mode:            hlog.ModeHybrid,
				PageBits:        9, // 512-byte pages: misses spill to storage fast
				BufferPages:     4,
				MutableFraction: 0.5,
				Device:          dev,
				IOWorkers:       3,
			})
			h, _ := RunWorkload(s, Workload{
				Clients: 4, Ops: 150, Keys: 24, Seed: seed,
				PendingBatch:  6,
				AsyncIO:       true,
				AsyncDeadline: 2 * time.Second,
				Chaos: func(stop <-chan struct{}) {
					for {
						select {
						case <-stop:
							return
						default:
						}
						s.Log().ShiftReadOnlyToTail()
						cut := s.Log().SafeReadOnlyAddress() &^ (s.Log().PageSize() - 1)
						if cut > s.Log().BeginAddress() {
							s.Compact(cut)
						}
						runtime.Gosched()
					}
				},
			})
			m := s.Metrics()
			if m.IOSubmitted == 0 || m.IODelivered == 0 {
				t.Errorf("scenario did not route ops through the io pool: %+v", m)
			}
			if m.IOSubmitted != m.IODelivered+m.IOShedTimeout {
				t.Errorf("io accounting leak: submitted=%d delivered=%d shed=%d",
					m.IOSubmitted, m.IODelivered, m.IOShedTimeout)
			}
			checkHistory(t, s, h)
		})
	}
}

// TestLinearizableExactlyOnce is the duplicate-delivery scenario: three
// stamped sessions hammer one shared counter through the serial
// protocol with seeded duplicate re-deliveries, a checkpoint races the
// commits, the store crashes and recovers, and every session resubmits
// above its recovered frontier — exactly what a retrying client does.
// The dedup-aware model accepts each delta at most once per serial, so
// a double-apply (or a lost acknowledgement) has no linearization.
func TestLinearizableExactlyOnce(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := faster.Config{
				Mode:        hlog.ModeHybrid,
				PageBits:    12,
				BufferPages: 8,
				Device:      device.NewMem(device.MemConfig{}),
				Ops:         faster.SumOps{},
			}
			h, err := RunExactlyOnce(cfg, t.TempDir(), EOWorkload{Sessions: 3, Serials: 12, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			r := Check(EOModel(), h, checkBudget)
			switch r.Outcome {
			case Illegal:
				t.Fatalf("history is NOT linearizable (%d states explored)\nminimized counterexample:\n%s",
					r.States, Format(EOModel(), r.Counterexample))
			case Unknown:
				t.Fatalf("checker exceeded its %v budget (longest prefix %d/%d)",
					checkBudget, r.LongestPrefix, len(h))
			}
			t.Logf("history=%d ops, states=%d", len(h), r.States)
		})
	}
}

// openScenarioSharded builds an n-shard store with one fault-injecting
// device per shard; the devices survive a store crash so recovery
// scenarios can reopen over them.
func openScenarioSharded(t *testing.T, n int, seed int64, base faster.Config) (faster.ShardedConfig, *faster.ShardedStore) {
	t.Helper()
	if base.Ops == nil {
		base.Ops = faster.SumOps{}
	}
	if base.IndexBuckets == 0 {
		base.IndexBuckets = 1 << 9
	}
	devs := make([]device.Device, n)
	for i := range devs {
		f := device.NewFaulty(device.NewMem(device.MemConfig{}))
		f.SeedFaults(uint64(seed)+uint64(i), 0.05, 0)
		devs[i] = f
	}
	t.Cleanup(func() {
		for _, d := range devs {
			d.Close()
		}
	})
	cfg := faster.ShardedConfig{
		Shards:    n,
		Base:      base,
		NewDevice: func(i int) device.Device { return devs[i] },
	}
	ss, err := faster.OpenSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, ss
}

// TestLinearizableSharded is the cluster scenario: multi-key batch
// windows span shards as concurrent per-shard fan-outs while a chaos
// goroutine compacts every shard independently, then a second
// (non-batched) phase on the same clock races a sharded checkpoint —
// every shard cut under the global serial barrier — crashes the
// ensemble, recovers from the manifest and observes every key. Each
// shard runs on its own fault-injecting device, so reads chase evicted
// records into per-shard pending I/O throughout.
func TestLinearizableSharded(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			testutil.CheckGoroutines(t)
			const shards, keys = 4, 32
			dir := t.TempDir()
			cfg, ss := openScenarioSharded(t, shards, seed, faster.Config{
				Mode:        hlog.ModeHybrid,
				PageBits:    9, // 512-byte pages: records spill to storage fast
				BufferPages: 4,
			})

			rec := NewRecorder()

			// Phase 1: batched multi-shard windows racing per-shard
			// compaction. The compaction sweep stops at half the phase's
			// events: continuous compaction would copy every record back
			// to the resident tail, so the second half is what lets the
			// per-shard buffers overflow and batched reads chase evicted
			// records into pending I/O.
			compactions := 0
			RecordWorkloadTarget(ShardedTarget{ss}, rec, Workload{
				// Four shards split the data: the per-shard volume must
				// still overflow each shard's 4-page buffer.
				Clients: 4, Ops: 400, Keys: keys, Seed: seed,
				Batch: 7, PendingBatch: 6,
				// The shift keeps every shard flushing and evicting even
				// after the compaction sweep stops.
				Interleave: func(client, n int) {
					if n%4 == 0 {
						for i := 0; i < ss.NumShards(); i++ {
							ss.Shard(i).Log().ShiftReadOnlyToTail()
						}
					}
				},
				Chaos: func(stop <-chan struct{}) {
					for rec.Peek() < 4*400 {
						select {
						case <-stop:
							return
						default:
						}
						for i := 0; i < ss.NumShards(); i++ {
							sh := ss.Shard(i)
							sh.Log().ShiftReadOnlyToTail()
							cut := sh.Log().SafeReadOnlyAddress() &^ (sh.Log().PageSize() - 1)
							if cut > sh.Log().BeginAddress() {
								if _, err := sh.Compact(cut); err == nil {
									compactions++
								}
							}
						}
						runtime.Gosched()
					}
				},
			})
			if compactions == 0 {
				t.Error("phase 1 never completed a per-shard compaction")
			}

			// Phase 2: per-op traffic racing a sharded checkpoint, then a
			// crash. Quiesce bounds the crash window exactly as in the
			// single-store checkpoint scenario.
			phase1End := rec.Now()
			var ckptStart, ckptEnd int64
			ckptDone := make(chan error, 1)
			quiesce := make(chan struct{})
			RecordWorkloadTarget(ShardedTarget{ss}, rec, Workload{
				Clients: 4, Ops: 80, Keys: keys, Seed: seed + 1,
				PendingBatch: 6,
				Quiesce:      quiesce, QuiesceTail: 5,
				Chaos: func(stop <-chan struct{}) {
					for rec.Peek() < phase1End+4*80*2/3 {
						select {
						case <-stop:
							goto checkpoint
						default:
							runtime.Gosched()
						}
					}
				checkpoint:
					ckptStart = rec.Now()
					close(quiesce)
					_, err := ss.Checkpoint(dir)
					ckptEnd = rec.Now()
					ckptDone <- err
				},
			})
			if err := <-ckptDone; err != nil {
				t.Fatal(err)
			}
			var pendingIOs uint64
			for i := 0; i < ss.NumShards(); i++ {
				pendingIOs += ss.Shard(i).Stats().PendingIOs
			}
			if pendingIOs == 0 {
				t.Error("scenario did not exercise per-shard pending I/O")
			}
			pre := PruneCrashWindow(rec.History(), ckptStart, ckptEnd)
			ss.Close() // the "crash": recovery trusts only the manifest

			r, err := faster.RecoverSharded(cfg, dir)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()

			// Observe the recovered state of every key on the same clock.
			c := rec.Client(99)
			sess := r.StartSession()
			for k := uint64(1); k <= keys; k++ {
				key := make([]byte, 8)
				binary.LittleEndian.PutUint64(key, k)
				out := make([]byte, 8)
				id := c.Begin(KVInput{Kind: KVRead, Key: k})
				st, err := sess.Read(key, nil, out, nil)
				if st == faster.Pending {
					results := sess.CompletePending(true)
					if len(results) != 1 {
						t.Fatalf("CompletePending: %d results", len(results))
					}
					st, err = results[0].Status, results[0].Err
				}
				switch st {
				case faster.OK:
					c.End(id, KVOutput{Found: true, Val: binary.LittleEndian.Uint64(out)})
				case faster.NotFound:
					c.End(id, KVOutput{})
				default:
					t.Fatalf("post-recovery read of key %d: %v %v", k, st, err)
				}
			}
			sess.Close()

			checkHistory(t, nil, append(pre, c.History()...))
		})
	}
}

// TestLinearizableExactlyOnceSharded is the sharded duplicate-delivery
// scenario: stamped sessions scatter their serial streams across shards
// (each shard's table admitting an ascending subsequence), two sharded
// checkpoints commit generations mid-run, the ensemble crashes and
// recovers from the manifest, and every session resubmits above the
// connection frontier — the max acked serial over shards, sound only
// because the checkpoint cut every shard at one serial barrier.
func TestLinearizableExactlyOnceSharded(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			testutil.CheckGoroutines(t)
			cfg, ss := openScenarioSharded(t, 4, seed, faster.Config{
				Mode:        hlog.ModeHybrid,
				PageBits:    12,
				BufferPages: 8,
			})
			ss.Close() // RunExactlyOnceSharded opens its own store over the devices

			h, err := RunExactlyOnceSharded(cfg, t.TempDir(), EOShardedWorkload{Sessions: 3, Serials: 12, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			r := Check(EOShardedModel(), h, checkBudget)
			switch r.Outcome {
			case Illegal:
				t.Fatalf("history is NOT linearizable (%d states explored)\nminimized counterexample:\n%s",
					r.States, Format(EOShardedModel(), r.Counterexample))
			case Unknown:
				t.Fatalf("checker exceeded its %v budget (longest prefix %d/%d)",
					checkBudget, r.LongestPrefix, len(h))
			}
			t.Logf("history=%d ops, states=%d", len(h), r.States)
		})
	}
}

// TestLinearizableReadCache runs the full mixed workload with the record
// read cache enabled over a tiny log buffer, so cold reads constantly
// fill the cache, writers constantly invalidate cached copies (upserts,
// RMWs and deletes racing cached readers), pending I/O completions
// publish fills against moving index entries, and a chaos goroutine
// compacts and truncates the log underneath cached records. A reader
// served a stale cached value after an acknowledged write — or a cached
// copy surviving the truncation of its backing chain — has no
// linearization.
func TestLinearizableReadCache(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Read faults only: compaction's flush wait must be able to
			// persist the copied records.
			dev := device.NewFaulty(device.NewMem(device.MemConfig{}))
			dev.SeedFaults(uint64(seed), 0.05, 0)
			s := openScenarioStore(t, faster.Config{
				Mode:            hlog.ModeHybrid,
				PageBits:        9, // 512-byte pages: misses spill to storage fast
				BufferPages:     4,
				MutableFraction: 0.5,
				Device:          dev,
				ReadCacheBytes:  4 << 10,
			})
			h, _ := RunWorkload(s, Workload{
				// 64 keys × 32-byte records exceed the 2 KB buffer, so a
				// read of any key not updated very recently descends to
				// storage — and the second such read must hit the cache.
				Clients: 4, Ops: 400, Keys: 64, Seed: seed,
				ReadPct: 50, UpsertPct: 22, RMWPct: 22, DeletePct: 6,
				PendingBatch: 6,
				Chaos: func(stop <-chan struct{}) {
					for {
						select {
						case <-stop:
							return
						default:
						}
						s.Log().ShiftReadOnlyToTail()
						cut := s.Log().SafeReadOnlyAddress() &^ (s.Log().PageSize() - 1)
						if cut > s.Log().BeginAddress() {
							s.Compact(cut)
						}
						runtime.Gosched()
					}
				},
			})
			m := s.Metrics().ReadCache
			if m.Fills == 0 {
				t.Error("scenario never filled the read cache")
			}
			if m.Hits == 0 {
				t.Error("scenario never served a cached read")
			}
			if m.Invalidations == 0 {
				t.Error("scenario never invalidated a cached record")
			}
			t.Logf("readcache fills=%d hits=%d invalidations=%d evictions=%d",
				m.Fills, m.Hits, m.Invalidations, m.Evictions)
			checkHistory(t, s, h)
		})
	}
}
