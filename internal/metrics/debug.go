package metrics

import (
	"os"
	"sync/atomic"
)

// debugAsserts is the single process-wide switch for internal invariant
// assertions. Historically faster and hlog each read FASTER_DEBUG_ASSERT
// into their own package variable, so a test flipping one flag silently
// left the other off; both layers now consult this shared switch.
var debugAsserts atomic.Bool

func init() { debugAsserts.Store(os.Getenv("FASTER_DEBUG_ASSERT") != "") }

// DebugAsserts reports whether internal invariant assertions are enabled
// (the FASTER_DEBUG_ASSERT environment variable, or SetDebugAsserts).
func DebugAsserts() bool { return debugAsserts.Load() }

// SetDebugAsserts flips invariant assertions for every layer at once
// (tests only). It returns the previous value so tests can restore it.
func SetDebugAsserts(on bool) bool { return debugAsserts.Swap(on) }
