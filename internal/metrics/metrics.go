// Package metrics is the store-wide instrumentation substrate: atomic
// counters, gauges and fixed-bucket latency histograms with zero
// allocations and no locks on the hot path. Every layer of the store
// (faster, hlog, index, epoch, device) embeds these primitives and
// exposes a snapshot; faster.Store.Metrics() aggregates the snapshots
// into the named series consumed by the bench/CLI reports and the
// expvar endpoint.
//
// The package is deliberately stdlib-only and dependency-free so that
// every internal package can import it.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous level that can move both ways (queue depths,
// region sizes).
type Gauge struct{ v atomic.Int64 }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistogramBuckets is the number of power-of-two latency buckets. Bucket i
// counts observations in [2^i, 2^(i+1)) ns (bucket 0 holds zero- and
// one-nanosecond observations; the last bucket is a catch-all), covering
// sub-microsecond spins up to multi-second stalls.
const HistogramBuckets = 40

// Histogram is a fixed-bucket latency histogram. Observations are
// single atomic increments; the value arrays are embedded, so a
// Histogram never allocates.
type Histogram struct {
	buckets [HistogramBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
	max     atomic.Uint64 // high-water mark, nanoseconds
}

// bucketOf maps a nanosecond duration to its bucket index.
func bucketOf(ns uint64) int {
	b := bits.Len64(ns)
	if b >= HistogramBuckets {
		return HistogramBuckets - 1
	}
	if b > 0 {
		b--
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.ObserveNs(uint64(d))
}

// ObserveNs records one duration given in nanoseconds.
func (h *Histogram) ObserveNs(ns uint64) {
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures a consistent-enough copy for reporting.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	s.MaxNs = h.max.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Buckets [HistogramBuckets]uint64
	Count   uint64
	SumNs   uint64
	MaxNs   uint64
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.Count)
}

// Max returns the largest observed duration.
func (s HistogramSnapshot) Max() time.Duration { return time.Duration(s.MaxNs) }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// top edge of the bucket containing it. Resolution is a factor of two,
// which is plenty for spotting latency regressions.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			// Bucket i covers [2^i, 2^(i+1)); report its top edge, capped
			// at the true maximum for the catch-all bucket.
			edge := uint64(1) << uint(i+1)
			if i == HistogramBuckets-1 || edge > s.MaxNs && s.MaxNs >= uint64(1)<<uint(i) {
				return time.Duration(s.MaxNs)
			}
			return time.Duration(edge)
		}
	}
	return time.Duration(s.MaxNs)
}

func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("count=%d mean=%v p50=%v p99=%v max=%v",
		s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.99), s.Max())
}

// Series is a flat name -> value view of a metrics snapshot, the exchange
// format between layer snapshots and the expvar/JSON endpoint and text
// reports. Latencies appear in nanoseconds.
type Series map[string]float64

// Merge copies every entry of other, prefixing names with prefix+".".
func (s Series) Merge(prefix string, other Series) {
	for k, v := range other {
		s[prefix+"."+k] = v
	}
}

// AddHistogram flattens h into count/mean/p50/p99/max sub-series of name.
func (s Series) AddHistogram(name string, h HistogramSnapshot) {
	s[name+".count"] = float64(h.Count)
	s[name+".mean_ns"] = float64(h.Mean())
	s[name+".p50_ns"] = float64(h.Quantile(0.50))
	s[name+".p99_ns"] = float64(h.Quantile(0.99))
	s[name+".max_ns"] = float64(h.MaxNs)
}

// Format renders the series as sorted "name value" lines.
func (s Series) Format() string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		v := s[k]
		if v == float64(uint64(v)) {
			fmt.Fprintf(&b, "%-44s %d\n", k, uint64(v))
		} else {
			fmt.Fprintf(&b, "%-44s %g\n", k, v)
		}
	}
	return b.String()
}
