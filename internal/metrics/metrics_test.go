package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
			c.Add(2)
			g.Add(5)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1000+8*2 {
		t.Fatalf("counter = %d", got)
	}
	if got := g.Load(); got != 8*5 {
		t.Fatalf("gauge = %d", got)
	}
	g.Set(-3)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge after Set = %d", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		ns   uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1024, 10},
		{1<<39 + 1, HistogramBuckets - 1}, {1 << 63, HistogramBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond) // 1000 ns
	}
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 101 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max() != time.Millisecond {
		t.Fatalf("max = %v", s.Max())
	}
	if p50 := s.Quantile(0.50); p50 < time.Microsecond || p50 > 2*time.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p100 := s.Quantile(1.0); p100 < 512*time.Microsecond {
		t.Fatalf("p100 = %v, want >= 512us bucket", p100)
	}
	if mean := s.Mean(); mean < time.Microsecond || mean > 20*time.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
	var empty Histogram
	if es := empty.Snapshot(); es.Mean() != 0 || es.Quantile(0.99) != 0 {
		t.Fatalf("empty histogram not zero: %v", es)
	}
}

func TestSeriesMergeAndFormat(t *testing.T) {
	s := Series{}
	s["ops"] = 42
	s.Merge("hlog", Series{"flushes": 7})
	var h Histogram
	h.Observe(time.Microsecond)
	s.AddHistogram("io.read", h.Snapshot())
	if s["hlog.flushes"] != 7 {
		t.Fatalf("merge failed: %v", s)
	}
	if s["io.read.count"] != 1 {
		t.Fatalf("histogram flatten failed: %v", s)
	}
	out := s.Format()
	if !strings.Contains(out, "hlog.flushes") || !strings.Contains(out, "ops") {
		t.Fatalf("format missing keys:\n%s", out)
	}
}

func TestDebugAsserts(t *testing.T) {
	prev := SetDebugAsserts(true)
	defer SetDebugAsserts(prev)
	if !DebugAsserts() {
		t.Fatal("SetDebugAsserts(true) not visible")
	}
	SetDebugAsserts(false)
	if DebugAsserts() {
		t.Fatal("SetDebugAsserts(false) not visible")
	}
}
