package resp

import (
	"net"
	"time"
)

// Client is a pipelining RESP client connection: write any number of
// commands, flush once, then read the replies in order. It is the shared
// transport for the §7.2.4 loopback benchmarks against both redcache and
// the FASTER front-end. A Client is not safe for concurrent use.
type Client struct {
	conn net.Conn
	r    *Reader
	w    *Writer

	// Timeout, when nonzero, bounds each batch: it is applied as a read
	// and write deadline around Pipeline and Do.
	Timeout time.Duration
}

// Dial connects to a RESP server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: NewReader(conn), w: NewWriter(conn)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Conn exposes the underlying connection (tests kill it mid-pipeline).
func (c *Client) Conn() net.Conn { return c.conn }

func (c *Client) deadline() error {
	if c.Timeout <= 0 {
		return nil
	}
	return c.conn.SetDeadline(time.Now().Add(c.Timeout))
}

// Pipeline sends all commands in one flush and reads one reply per
// command — the batching whose depth §7.2.4 sweeps from 1 to 200. Error
// replies are returned as Values (check Value.IsError), not Go errors;
// only transport or protocol failures error.
func (c *Client) Pipeline(cmds [][][]byte) ([]Value, error) {
	if err := c.deadline(); err != nil {
		return nil, err
	}
	for _, cmd := range cmds {
		if err := c.w.WriteCommand(cmd...); err != nil {
			return nil, err
		}
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := make([]Value, len(cmds))
	for i := range out {
		v, err := c.r.ReadReply()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Do sends one command and reads its reply.
func (c *Client) Do(args ...[]byte) (Value, error) {
	vs, err := c.Pipeline([][][]byte{args})
	if err != nil {
		return Value{}, err
	}
	return vs[0], nil
}
