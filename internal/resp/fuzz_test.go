package resp

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzLimits are deliberately small so the fuzzer reaches the limit
// branches (MaxArgs, MaxBulk, MaxInline) with short inputs.
var fuzzLimits = Limits{MaxArgs: 64, MaxBulk: 4096, MaxInline: 1024}

// classified reports whether err belongs to one of the reader's declared
// failure families. Anything else escaping the parser is a bug: callers
// branch on these to decide between "drop the connection" and "reply
// with an error".
func classified(err error) bool {
	return errors.Is(err, ErrProtocol) || errors.Is(err, ErrTooLarge) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// FuzzReadCommand feeds arbitrary bytes to the command parser (both the
// array form and the inline form): it must never panic, every failure
// must be a classified error, and every accepted command must re-encode
// and re-parse to the same argument vector.
func FuzzReadCommand(f *testing.F) {
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"))
	f.Add([]byte("GET k\r\n"))
	f.Add([]byte("  \r\nPING\r\n")) // blank inline line skipped
	f.Add([]byte("*0\r\n"))
	f.Add([]byte("*2\r\n$-1\r\n$1\r\nx\r\n")) // null bulk inside a command
	f.Add([]byte("*65\r\n"))                  // over MaxArgs
	f.Add([]byte("$5\r\nhello\r\n"))
	f.Add([]byte("*1\r\n$4096\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReaderLimits(bytes.NewReader(data), fuzzLimits)
		args, err := r.ReadCommand()
		if err != nil {
			if !classified(err) {
				t.Fatalf("unclassified parse error: %v", err)
			}
			return
		}
		if len(args) > fuzzLimits.MaxArgs {
			t.Fatalf("parser returned %d args past MaxArgs=%d", len(args), fuzzLimits.MaxArgs)
		}
		for _, a := range args {
			if len(a) > fuzzLimits.MaxBulk && len(a) > fuzzLimits.MaxInline {
				t.Fatalf("parser returned a %d-byte argument past the limits", len(a))
			}
		}
		// Round-trip: the canonical re-encoding must parse back to the
		// same argument vector.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteCommand(args...); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := NewReaderLimits(bytes.NewReader(buf.Bytes()), fuzzLimits).ReadCommand()
		if err != nil {
			t.Fatalf("re-parse of %q: %v", buf.Bytes(), err)
		}
		if len(again) != len(args) {
			t.Fatalf("round-trip arg count %d != %d", len(again), len(args))
		}
		for i := range args {
			if !bytes.Equal(again[i], args[i]) {
				t.Fatalf("round-trip arg %d: %q != %q", i, again[i], args[i])
			}
		}
	})
}

// writeValue re-encodes a parsed reply through the Writer.
func writeValue(w *Writer, v Value) error {
	switch v.Kind {
	case SimpleString:
		return w.WriteSimple(string(v.Str))
	case Error:
		return w.WriteError(string(v.Str))
	case Integer:
		return w.WriteInt(v.Int)
	case BulkString:
		return w.WriteBulk(v.Str)
	case Nil:
		return w.WriteNil()
	case Array:
		if err := w.WriteArrayHeader(len(v.Elems)); err != nil {
			return err
		}
		for _, e := range v.Elems {
			if err := writeValue(w, e); err != nil {
				return err
			}
		}
		return nil
	default:
		return errors.New("unknown kind")
	}
}

func valuesEqual(a, b Value) bool {
	if a.Kind != b.Kind || a.Int != b.Int || !bytes.Equal(a.Str, b.Str) ||
		len(a.Elems) != len(b.Elems) {
		return false
	}
	for i := range a.Elems {
		if !valuesEqual(a.Elems[i], b.Elems[i]) {
			return false
		}
	}
	return true
}

// lineSafe reports whether every line-framed payload in v survives
// re-encoding byte-for-byte. WriteError replaces CR/LF to preserve
// framing, and a simple string containing a bare CR would change the
// parse, so those values round-trip only semantically, not literally.
func lineSafe(v Value) bool {
	switch v.Kind {
	case SimpleString, Error:
		return !bytes.ContainsAny(v.Str, "\r\n")
	case Array:
		for _, e := range v.Elems {
			if !lineSafe(e) {
				return false
			}
		}
	}
	return true
}

// FuzzReadReply feeds arbitrary bytes to the reply parser: no panics, no
// unclassified errors, bounded recursion, and accepted replies re-encode
// to an equal value.
func FuzzReadReply(f *testing.F) {
	f.Add([]byte("+OK\r\n"))
	f.Add([]byte("-ERR nope\r\n"))
	f.Add([]byte(":42\r\n"))
	f.Add([]byte("$5\r\nhello\r\n"))
	f.Add([]byte("$-1\r\n"))
	f.Add([]byte("*2\r\n:1\r\n$1\r\nx\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Add(bytes.Repeat([]byte("*1\r\n"), 20)) // nesting past maxReplyDepth
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReaderLimits(bytes.NewReader(data), fuzzLimits)
		v, err := r.ReadReply()
		if err != nil {
			if !classified(err) {
				t.Fatalf("unclassified parse error: %v", err)
			}
			return
		}
		if !lineSafe(v) {
			return
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := writeValue(w, v); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := NewReaderLimits(bytes.NewReader(buf.Bytes()), fuzzLimits).ReadReply()
		if err != nil {
			t.Fatalf("re-parse of %q: %v", buf.Bytes(), err)
		}
		if !valuesEqual(v, again) {
			t.Fatalf("round-trip mismatch: %+v != %+v (encoding %q)", v, again, buf.Bytes())
		}
	})
}
