// Package resp is the repository's shared RESP2 wire codec: the Redis
// serialisation protocol spoken by the network front-end
// (internal/server) and the Redis stand-in baseline
// (internal/baselines/redcache).
//
// The codec is deliberately small and allocation-conscious:
//
//   - Reader parses client commands (arrays of bulk strings, plus the
//     space-separated inline form) and server replies (simple strings,
//     errors, integers, bulk strings, arrays) from a buffered stream.
//   - Writer renders replies and commands into a buffered stream; the
//     caller controls flushing, which is what makes client pipelining
//     (§7.2.4) and server-side batched responses possible.
//
// Both sides enforce limits (argument count, bulk length) so a malformed
// or hostile peer cannot make the process allocate unboundedly — the
// first of the front-end's robustness lines of defence.
package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// ErrProtocol reports malformed RESP input. It wraps the specific cause.
var ErrProtocol = errors.New("resp: protocol error")

// ErrTooLarge reports input exceeding the reader's configured limits; the
// connection should be dropped, since framing is lost.
var ErrTooLarge = errors.New("resp: input exceeds limit")

// Limits bound what a Reader will accept. The zero value selects the
// defaults.
type Limits struct {
	// MaxArgs caps the number of elements in a command array
	// (default 1024).
	MaxArgs int
	// MaxBulk caps a single bulk-string payload in bytes
	// (default 8 MiB).
	MaxBulk int
	// MaxInline caps an inline command line in bytes (default 64 KiB).
	MaxInline int
}

func (l *Limits) setDefaults() {
	if l.MaxArgs <= 0 {
		l.MaxArgs = 1024
	}
	if l.MaxBulk <= 0 {
		l.MaxBulk = 8 << 20
	}
	if l.MaxInline <= 0 {
		l.MaxInline = 64 << 10
	}
}

// Reader parses RESP2 values from a stream.
type Reader struct {
	br  *bufio.Reader
	lim Limits
}

// NewReader wraps r with the default limits.
func NewReader(r io.Reader) *Reader { return NewReaderLimits(r, Limits{}) }

// NewReaderLimits wraps r with explicit limits.
func NewReaderLimits(r io.Reader, lim Limits) *Reader {
	lim.setDefaults()
	return &Reader{br: bufio.NewReaderSize(r, 64<<10), lim: lim}
}

// Buffered returns the number of bytes already read from the connection
// but not yet consumed — nonzero while more pipelined input is pending,
// which is the server's cue to delay flushing its reply buffer.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// readLine reads up to and including CRLF, returning the line without the
// terminator.
func (r *Reader) readLine() ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if errors.Is(err, bufio.ErrBufferFull) {
		return nil, fmt.Errorf("%w: line too long", ErrTooLarge)
	}
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("%w: line missing CRLF", ErrProtocol)
	}
	return line[:len(line)-2], nil
}

// parseInt parses a RESP integer field (no allocations for the common
// small case).
func parseInt(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("%w: empty integer", ErrProtocol)
	}
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad integer %q", ErrProtocol, b)
	}
	return n, nil
}

// ReadCommand reads one client command: a RESP array of bulk strings, or
// an inline command (space-separated words on a single line). The
// returned argument slices are freshly allocated and do not alias the
// reader's buffer. io.EOF is returned exactly at a clean end of stream.
func (r *Reader) ReadCommand() ([][]byte, error) {
	prefix, err := r.br.ReadByte()
	if err != nil {
		return nil, err
	}
	if prefix != '*' {
		// Inline command.
		if err := r.br.UnreadByte(); err != nil {
			return nil, err
		}
		return r.readInline()
	}
	header, err := r.readLine()
	if err != nil {
		return nil, unexpectedEOF(err)
	}
	n, err := parseInt(header)
	if err != nil {
		return nil, err
	}
	if n < 0 || n > int64(r.lim.MaxArgs) {
		return nil, fmt.Errorf("%w: %d command arguments", ErrTooLarge, n)
	}
	args := make([][]byte, 0, n)
	for i := int64(0); i < n; i++ {
		arg, err := r.readBulk()
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		if arg == nil {
			return nil, fmt.Errorf("%w: null bulk inside command", ErrProtocol)
		}
		args = append(args, arg)
	}
	return args, nil
}

// readInline parses the inline command form: whitespace-separated words.
// Empty lines are skipped (a telnet user hitting enter), matching Redis.
func (r *Reader) readInline() ([][]byte, error) {
	for {
		line, err := r.readLine()
		if err != nil {
			return nil, err
		}
		if len(line) > r.lim.MaxInline {
			return nil, fmt.Errorf("%w: inline command", ErrTooLarge)
		}
		var args [][]byte
		for i := 0; i < len(line); {
			for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
				i++
			}
			start := i
			for i < len(line) && line[i] != ' ' && line[i] != '\t' {
				i++
			}
			if i > start {
				args = append(args, append([]byte(nil), line[start:i]...))
			}
		}
		if len(args) > 0 {
			return args, nil
		}
	}
}

// readBulk reads one $-prefixed bulk string (nil for the RESP null bulk).
func (r *Reader) readBulk() ([]byte, error) {
	line, err := r.readLine()
	if err != nil {
		return nil, err
	}
	if len(line) == 0 || line[0] != '$' {
		return nil, fmt.Errorf("%w: expected bulk string, got %q", ErrProtocol, line)
	}
	n, err := parseInt(line[1:])
	if err != nil {
		return nil, err
	}
	if n == -1 {
		return nil, nil // null bulk
	}
	if n < 0 || n > int64(r.lim.MaxBulk) {
		return nil, fmt.Errorf("%w: bulk of %d bytes", ErrTooLarge, n)
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, unexpectedEOF(err)
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, fmt.Errorf("%w: bulk missing CRLF", ErrProtocol)
	}
	return buf[:n:n], nil
}

// Kind tags a parsed reply Value.
type Kind byte

// Reply kinds.
const (
	SimpleString Kind = '+'
	Error        Kind = '-'
	Integer      Kind = ':'
	BulkString   Kind = '$'
	Array        Kind = '*'
	Nil          Kind = '_' // RESP2 null bulk / null array
)

// Value is one parsed server reply.
type Value struct {
	Kind  Kind
	Str   []byte  // SimpleString, Error, BulkString payload
	Int   int64   // Integer
	Elems []Value // Array elements
}

// IsError reports whether the value is an error reply.
func (v Value) IsError() bool { return v.Kind == Error }

// Err returns the error reply as a Go error, or nil for non-errors.
func (v Value) Err() error {
	if v.Kind != Error {
		return nil
	}
	return fmt.Errorf("resp: server error: %s", v.Str)
}

// ReadReply reads one server reply value (recursively for arrays).
func (r *Reader) ReadReply() (Value, error) {
	return r.readReply(0)
}

// maxReplyDepth bounds array nesting so a hostile server cannot blow the
// stack.
const maxReplyDepth = 16

func (r *Reader) readReply(depth int) (Value, error) {
	if depth > maxReplyDepth {
		return Value{}, fmt.Errorf("%w: reply nesting", ErrTooLarge)
	}
	line, err := r.readLine()
	if err != nil {
		return Value{}, err
	}
	if len(line) == 0 {
		return Value{}, fmt.Errorf("%w: empty reply line", ErrProtocol)
	}
	body := line[1:]
	switch line[0] {
	case '+':
		return Value{Kind: SimpleString, Str: append([]byte(nil), body...)}, nil
	case '-':
		return Value{Kind: Error, Str: append([]byte(nil), body...)}, nil
	case ':':
		n, err := parseInt(body)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: Integer, Int: n}, nil
	case '$':
		n, err := parseInt(body)
		if err != nil {
			return Value{}, err
		}
		if n == -1 {
			return Value{Kind: Nil}, nil
		}
		if n < 0 || n > int64(r.lim.MaxBulk) {
			return Value{}, fmt.Errorf("%w: bulk of %d bytes", ErrTooLarge, n)
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return Value{}, unexpectedEOF(err)
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Value{}, fmt.Errorf("%w: bulk missing CRLF", ErrProtocol)
		}
		return Value{Kind: BulkString, Str: buf[:n:n]}, nil
	case '*':
		n, err := parseInt(body)
		if err != nil {
			return Value{}, err
		}
		if n == -1 {
			return Value{Kind: Nil}, nil
		}
		if n < 0 || n > int64(r.lim.MaxArgs) {
			return Value{}, fmt.Errorf("%w: array of %d elements", ErrTooLarge, n)
		}
		elems := make([]Value, 0, n)
		for i := int64(0); i < n; i++ {
			v, err := r.readReply(depth + 1)
			if err != nil {
				return Value{}, unexpectedEOF(err)
			}
			elems = append(elems, v)
		}
		return Value{Kind: Array, Elems: elems}, nil
	default:
		return Value{}, fmt.Errorf("%w: unknown reply prefix %q", ErrProtocol, line[0])
	}
}

// unexpectedEOF maps a mid-frame EOF to io.ErrUnexpectedEOF so callers
// can distinguish a clean close (io.EOF before any byte) from a torn
// frame.
func unexpectedEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

// Writer renders RESP2 values into a buffered stream. Nothing reaches the
// connection until Flush; servers flush when the read side has no more
// pipelined input, clients flush once per batch.
type Writer struct {
	bw  *bufio.Writer
	num [24]byte // scratch for integer rendering
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 64<<10)}
}

// Flush writes the buffered output to the underlying stream.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Buffered returns the number of bytes waiting to be flushed.
func (w *Writer) Buffered() int { return w.bw.Buffered() }

func (w *Writer) line(prefix byte, body []byte) error {
	if err := w.bw.WriteByte(prefix); err != nil {
		return err
	}
	if _, err := w.bw.Write(body); err != nil {
		return err
	}
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteSimple writes a simple string reply (+s).
func (w *Writer) WriteSimple(s string) error { return w.line('+', []byte(s)) }

// WriteError writes an error reply (-msg). The message must not contain
// CR or LF; offenders are replaced to preserve framing.
func (w *Writer) WriteError(msg string) error {
	b := []byte(msg)
	for i, c := range b {
		if c == '\r' || c == '\n' {
			b[i] = ' '
		}
	}
	return w.line('-', b)
}

// WriteInt writes an integer reply (:n).
func (w *Writer) WriteInt(n int64) error {
	return w.line(':', strconv.AppendInt(w.num[:0], n, 10))
}

// WriteBulk writes a bulk string reply ($len payload).
func (w *Writer) WriteBulk(b []byte) error {
	if err := w.line('$', strconv.AppendInt(w.num[:0], int64(len(b)), 10)); err != nil {
		return err
	}
	if _, err := w.bw.Write(b); err != nil {
		return err
	}
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteNil writes the RESP2 null bulk reply ($-1).
func (w *Writer) WriteNil() error {
	_, err := w.bw.WriteString("$-1\r\n")
	return err
}

// WriteArrayHeader writes an array header (*n); the caller then writes n
// elements.
func (w *Writer) WriteArrayHeader(n int) error {
	return w.line('*', strconv.AppendInt(w.num[:0], int64(n), 10))
}

// WriteCommand writes one client command as an array of bulk strings.
func (w *Writer) WriteCommand(args ...[]byte) error {
	if err := w.WriteArrayHeader(len(args)); err != nil {
		return err
	}
	for _, a := range args {
		if err := w.WriteBulk(a); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Pooled command decode
// ---------------------------------------------------------------------------

// Command is a client command decoded into reusable storage: every
// argument lives in one flat backing buffer, so a connection loop that
// decodes into the same Command over and over allocates nothing in
// steady state. Args are views into that buffer and are invalidated by
// the next ReadCommandInto with the same Command; callers that hand an
// argument to longer-lived code must copy it first.
type Command struct {
	Args [][]byte // views into buf, valid until the next decode

	buf  []byte
	offs []int // flat (start, end) pairs; offsets survive buf regrowth
}

// Is reports whether the command name (Args[0]) equals name,
// ASCII-case-insensitively, without allocating.
func (c *Command) Is(name string) bool {
	if len(c.Args) == 0 || len(c.Args[0]) != len(name) {
		return false
	}
	for i, b := range c.Args[0] {
		if b|0x20 != name[i]|0x20 {
			return false
		}
	}
	return true
}

// Size returns the total decoded argument bytes — the measure a server
// uses to budget how many commands a pipeline window may pin.
func (c *Command) Size() int { return len(c.buf) }

// ReadCommandInto reads one client command (array or inline form, as
// ReadCommand) into c, reusing its backing storage. The arguments are
// recorded as offsets while the flat buffer grows, then materialized as
// slices once the frame is complete, so regrowth mid-command cannot
// leave an argument pointing into a stale allocation.
func (r *Reader) ReadCommandInto(c *Command) error {
	c.Args = c.Args[:0]
	c.buf = c.buf[:0]
	c.offs = c.offs[:0]
	prefix, err := r.br.ReadByte()
	if err != nil {
		return err
	}
	if prefix != '*' {
		if err := r.br.UnreadByte(); err != nil {
			return err
		}
		return r.readInlineInto(c)
	}
	header, err := r.readLine()
	if err != nil {
		return unexpectedEOF(err)
	}
	n, err := parseInt(header)
	if err != nil {
		return err
	}
	if n < 0 || n > int64(r.lim.MaxArgs) {
		return fmt.Errorf("%w: %d command arguments", ErrTooLarge, n)
	}
	for i := int64(0); i < n; i++ {
		if err := r.readBulkInto(c); err != nil {
			return unexpectedEOF(err)
		}
	}
	c.materialize()
	return nil
}

// readBulkInto appends one bulk-string payload to c's flat buffer and
// records its offsets.
func (r *Reader) readBulkInto(c *Command) error {
	line, err := r.readLine()
	if err != nil {
		return err
	}
	if len(line) == 0 || line[0] != '$' {
		return fmt.Errorf("%w: expected bulk string, got %q", ErrProtocol, line)
	}
	n, err := parseInt(line[1:])
	if err != nil {
		return err
	}
	if n == -1 {
		return fmt.Errorf("%w: null bulk inside command", ErrProtocol)
	}
	if n < 0 || n > int64(r.lim.MaxBulk) {
		return fmt.Errorf("%w: bulk of %d bytes", ErrTooLarge, n)
	}
	start := len(c.buf)
	end := start + int(n)
	if cap(c.buf) < end+2 {
		grown := make([]byte, start, max(end+2, 2*cap(c.buf)))
		copy(grown, c.buf)
		c.buf = grown
	}
	c.buf = c.buf[:end+2]
	if _, err := io.ReadFull(r.br, c.buf[start:end+2]); err != nil {
		return unexpectedEOF(err)
	}
	if c.buf[end] != '\r' || c.buf[end+1] != '\n' {
		return fmt.Errorf("%w: bulk missing CRLF", ErrProtocol)
	}
	c.buf = c.buf[:end]
	c.offs = append(c.offs, start, end)
	return nil
}

// readInlineInto parses the inline form into c's flat buffer.
func (r *Reader) readInlineInto(c *Command) error {
	for {
		line, err := r.readLine()
		if err != nil {
			return err
		}
		if len(line) > r.lim.MaxInline {
			return fmt.Errorf("%w: inline command", ErrTooLarge)
		}
		for i := 0; i < len(line); {
			for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
				i++
			}
			start := i
			for i < len(line) && line[i] != ' ' && line[i] != '\t' {
				i++
			}
			if i > start {
				o := len(c.buf)
				c.buf = append(c.buf, line[start:i]...)
				c.offs = append(c.offs, o, len(c.buf))
			}
		}
		if len(c.offs) > 0 {
			c.materialize()
			return nil
		}
	}
}

// materialize turns the recorded offset pairs into Args views.
func (c *Command) materialize() {
	if cap(c.Args) < len(c.offs)/2 {
		c.Args = make([][]byte, 0, len(c.offs)/2)
	}
	for i := 0; i < len(c.offs); i += 2 {
		c.Args = append(c.Args, c.buf[c.offs[i]:c.offs[i+1]:c.offs[i+1]])
	}
}
