package resp

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
)

func reader(s string) *Reader { return NewReader(strings.NewReader(s)) }

func TestReadCommandArray(t *testing.T) {
	r := reader("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n")
	args, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("SET"), []byte("k"), []byte("hello")}
	if len(args) != len(want) {
		t.Fatalf("args = %d, want %d", len(args), len(want))
	}
	for i := range want {
		if !bytes.Equal(args[i], want[i]) {
			t.Fatalf("arg %d = %q, want %q", i, args[i], want[i])
		}
	}
	if _, err := r.ReadCommand(); err != io.EOF {
		t.Fatalf("second read err = %v, want io.EOF", err)
	}
}

func TestReadCommandBinarySafe(t *testing.T) {
	// Keys with embedded CR/LF/NUL must round-trip: bulk strings are
	// length-prefixed, not delimiter-framed.
	key := []byte{0x00, '\r', '\n', 0xff, 'k'}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteCommand([]byte("GET"), key); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	args, err := NewReader(&buf).ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(args[1], key) {
		t.Fatalf("key = %x, want %x", args[1], key)
	}
}

func TestReadCommandInline(t *testing.T) {
	r := reader("PING\r\n  GET   key1 \r\n\r\nDEL k\r\n")
	for _, want := range [][]string{{"PING"}, {"GET", "key1"}, {"DEL", "k"}} {
		args, err := r.ReadCommand()
		if err != nil {
			t.Fatal(err)
		}
		if len(args) != len(want) {
			t.Fatalf("args = %q, want %q", args, want)
		}
		for i := range want {
			if string(args[i]) != want[i] {
				t.Fatalf("args = %q, want %q", args, want)
			}
		}
	}
}

func TestReadCommandMalformed(t *testing.T) {
	cases := []string{
		"*2\r\n$3\r\nGET\r\n:5\r\n", // non-bulk element
		"*1\r\n$-1\r\n",             // null bulk inside command
		"*1\r\n$3\r\nGETx\n",        // bad bulk terminator
		"*x\r\n",                    // bad array count
		"*1\r\n$2\r\nab",            // torn frame
		"*1\nxx",                    // missing CR
	}
	for _, c := range cases {
		if _, err := reader(c).ReadCommand(); err == nil {
			t.Errorf("ReadCommand(%q) succeeded, want error", c)
		} else if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("ReadCommand(%q) returned clean EOF for torn input", c)
		}
	}
}

func TestReadCommandLimits(t *testing.T) {
	lim := Limits{MaxArgs: 2, MaxBulk: 4}
	r := NewReaderLimits(strings.NewReader("*3\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nc\r\n"), lim)
	if _, err := r.ReadCommand(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	r = NewReaderLimits(strings.NewReader("*1\r\n$5\r\nhello\r\n"), lim)
	if _, err := r.ReadCommand(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteSimple("OK")
	w.WriteError("READONLY store is read-only")
	w.WriteInt(-42)
	w.WriteBulk([]byte("payload\r\nwith crlf"))
	w.WriteNil()
	w.WriteArrayHeader(2)
	w.WriteInt(1)
	w.WriteBulk(nil)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	v, _ := r.ReadReply()
	if v.Kind != SimpleString || string(v.Str) != "OK" {
		t.Fatalf("simple = %+v", v)
	}
	v, _ = r.ReadReply()
	if !v.IsError() || !strings.HasPrefix(string(v.Str), "READONLY") || v.Err() == nil {
		t.Fatalf("error = %+v", v)
	}
	v, _ = r.ReadReply()
	if v.Kind != Integer || v.Int != -42 {
		t.Fatalf("int = %+v", v)
	}
	v, _ = r.ReadReply()
	if v.Kind != BulkString || string(v.Str) != "payload\r\nwith crlf" {
		t.Fatalf("bulk = %+v", v)
	}
	v, _ = r.ReadReply()
	if v.Kind != Nil {
		t.Fatalf("nil = %+v", v)
	}
	v, err := r.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != Array || len(v.Elems) != 2 || v.Elems[0].Int != 1 || v.Elems[1].Kind != BulkString || len(v.Elems[1].Str) != 0 {
		t.Fatalf("array = %+v", v)
	}
}

func TestWriteErrorSanitisesCRLF(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteError("bad\r\ninjection")
	w.Flush()
	v, err := NewReader(&buf).ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsError() || strings.ContainsAny(string(v.Str), "\r\n") {
		t.Fatalf("error reply = %+v", v)
	}
}

func TestClientPipeline(t *testing.T) {
	// A trivial echo-ish server: replies +OK to every command.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r, w := NewReader(conn), NewWriter(conn)
		for {
			args, err := r.ReadCommand()
			if err != nil {
				return
			}
			w.WriteBulk(args[len(args)-1])
			if r.Buffered() == 0 {
				if err := w.Flush(); err != nil {
					return
				}
			}
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cmds := [][][]byte{
		{[]byte("ECHO"), []byte("a")},
		{[]byte("ECHO"), []byte("b")},
		{[]byte("ECHO"), []byte("c")},
	}
	vs, err := c.Pipeline(cmds)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"a", "b", "c"} {
		if string(vs[i].Str) != want {
			t.Fatalf("reply %d = %q, want %q", i, vs[i].Str, want)
		}
	}
	c.Close()
	<-done
}

func TestReadCommandInto(t *testing.T) {
	const stream = "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n" +
		"PING\r\n" +
		"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"
	r := reader(stream)
	var c Command

	if err := r.ReadCommandInto(&c); err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("SET"), []byte("k"), []byte("hello")}
	if len(c.Args) != len(want) {
		t.Fatalf("args = %d, want %d", len(c.Args), len(want))
	}
	for i := range want {
		if !bytes.Equal(c.Args[i], want[i]) {
			t.Fatalf("arg %d = %q, want %q", i, c.Args[i], want[i])
		}
	}
	if !c.Is("set") || !c.Is("SET") || c.Is("GET") || c.Is("SE") {
		t.Fatal("Is: case-insensitive name match broken")
	}

	// Inline form reuses the same storage.
	if err := r.ReadCommandInto(&c); err != nil {
		t.Fatal(err)
	}
	if len(c.Args) != 1 || !c.Is("PING") {
		t.Fatalf("inline decode = %q", c.Args)
	}

	if err := r.ReadCommandInto(&c); err != nil {
		t.Fatal(err)
	}
	if len(c.Args) != 2 || !c.Is("GET") || !bytes.Equal(c.Args[1], []byte("k")) {
		t.Fatalf("third decode = %q", c.Args)
	}
	if err := r.ReadCommandInto(&c); err != io.EOF {
		t.Fatalf("end of stream err = %v, want io.EOF", err)
	}
}

// TestReadCommandIntoRegrowth forces the flat buffer to regrow while a
// command is mid-decode; earlier arguments must survive because they are
// tracked as offsets, not pointers.
func TestReadCommandIntoRegrowth(t *testing.T) {
	big := strings.Repeat("x", 64<<10)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteCommand([]byte("SET"), []byte("key-1"), []byte(big)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var c Command
	if err := r.ReadCommandInto(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Args[0], []byte("SET")) || !bytes.Equal(c.Args[1], []byte("key-1")) {
		t.Fatalf("early args corrupted by regrowth: %q %q", c.Args[0], c.Args[1])
	}
	if len(c.Args[2]) != len(big) || !bytes.Equal(c.Args[2], []byte(big)) {
		t.Fatal("big arg corrupted")
	}
}

// TestReadCommandIntoParity checks the pooled decoder accepts and
// rejects the same inputs as ReadCommand.
func TestReadCommandIntoParity(t *testing.T) {
	cases := []string{
		"*1\r\n$4\r\nPING\r\n",
		"*2\r\n$3\r\nGET\r\n$0\r\n\r\n",
		"  INCR   counter  \r\n",
		"*1\r\n$-1\r\n",       // null bulk inside command
		"*2\r\n$3\r\nGET\r\n", // torn frame
		"*-1\r\n",
		"$3\r\nGET\r\n",
	}
	for _, in := range cases {
		args, err1 := reader(in).ReadCommand()
		var c Command
		err2 := reader(in).ReadCommandInto(&c)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%q: ReadCommand err %v, ReadCommandInto err %v", in, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if len(args) != len(c.Args) {
			t.Fatalf("%q: %d vs %d args", in, len(args), len(c.Args))
		}
		for i := range args {
			if !bytes.Equal(args[i], c.Args[i]) {
				t.Fatalf("%q arg %d: %q vs %q", in, i, args[i], c.Args[i])
			}
		}
	}
}

// TestReadCommandIntoZeroAlloc: steady-state pooled decode must not
// touch the heap once the Command's storage has warmed up.
func TestReadCommandIntoZeroAlloc(t *testing.T) {
	frame := []byte("*3\r\n$3\r\nSET\r\n$5\r\nkey-7\r\n$8\r\nvalue-42\r\n")
	src := bytes.NewReader(nil)
	r := NewReader(src)
	var c Command
	src.Reset(frame)
	if err := r.ReadCommandInto(&c); err != nil { // warm the buffers
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		src.Reset(frame)
		if err := r.ReadCommandInto(&c); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("ReadCommandInto: %.1f allocs/op, want 0", got)
	}
}
