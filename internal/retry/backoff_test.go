package retry

import (
	"errors"
	"testing"
	"time"
)

// TestDelayClampsDegenerateInputs pins the normalization rules: retry
// numbers below 1, multipliers below 1, and jitter fractions outside
// [0, 1] must all clamp rather than produce nonsense delays.
func TestDelayClampsDegenerateInputs(t *testing.T) {
	p := Policy{BaseDelay: time.Millisecond, Multiplier: 2}
	if got, want := p.Delay(0), p.Delay(1); got != want {
		t.Fatalf("Delay(0)=%v, want Delay(1)=%v", got, want)
	}
	if got, want := p.Delay(-5), p.Delay(1); got != want {
		t.Fatalf("Delay(-5)=%v, want Delay(1)=%v", got, want)
	}

	// Multiplier below 1 normalizes to doubling, never a shrinking ladder.
	shrink := Policy{BaseDelay: time.Millisecond, Multiplier: 0.5}
	if d1, d2 := shrink.Delay(1), shrink.Delay(2); d2 != 2*d1 {
		t.Fatalf("Multiplier<1: Delay(2)=%v, want %v (doubling)", d2, 2*d1)
	}

	// JitterFrac outside [0, 1] clamps: 2.0 behaves like 1.0 (delays in
	// [0, 2d]), -1 like 0 (no jitter).
	wild := Policy{BaseDelay: time.Millisecond, JitterFrac: 2}
	for i := 0; i < 200; i++ {
		if d := wild.Delay(1); d < 0 || d > 2*time.Millisecond {
			t.Fatalf("JitterFrac=2 delay %v outside [0, 2ms]", d)
		}
	}
	flat := Policy{BaseDelay: time.Millisecond, JitterFrac: -1}
	for i := 0; i < 20; i++ {
		if d := flat.Delay(1); d != time.Millisecond {
			t.Fatalf("JitterFrac=-1 delay %v, want exactly 1ms", d)
		}
	}
}

// TestDelayJitterBoundsAcrossLadder checks the ±JitterFrac envelope at
// every rung of the backoff ladder, not just the first.
func TestDelayJitterBoundsAcrossLadder(t *testing.T) {
	p := Policy{BaseDelay: time.Millisecond, MaxDelay: 64 * time.Millisecond, Multiplier: 2, JitterFrac: 0.25}
	for retryNo := 1; retryNo <= 8; retryNo++ {
		base := float64(time.Millisecond) * float64(int(1)<<(retryNo-1))
		if capd := float64(64 * time.Millisecond); base > capd {
			base = capd
		}
		lo, hi := time.Duration(0.75*base), time.Duration(1.25*base)
		for i := 0; i < 100; i++ {
			if d := p.Delay(retryNo); d < lo || d > hi {
				t.Fatalf("Delay(%d)=%v outside [%v, %v]", retryNo, d, lo, hi)
			}
		}
	}
}

// TestDelayUncappedGrowth confirms MaxDelay==0 really means unbounded
// exponential growth.
func TestDelayUncappedGrowth(t *testing.T) {
	p := Policy{BaseDelay: time.Millisecond, Multiplier: 2}
	if got, want := p.Delay(11), 1024*time.Millisecond; got != want {
		t.Fatalf("Delay(11)=%v, want %v", got, want)
	}
}

// TestDefaultsAreSane pins the store default policies: both retry, both
// back off, both bound the worst-case delay.
func TestDefaultsAreSane(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Policy
	}{{"read", DefaultRead()}, {"write", DefaultWrite()}} {
		t.Run(tc.name, func(t *testing.T) {
			if tc.p.Attempts() < 2 {
				t.Fatalf("default policy never retries: %+v", tc.p)
			}
			if tc.p.MaxDelay == 0 {
				t.Fatalf("default policy has unbounded backoff: %+v", tc.p)
			}
			if tc.p.JitterFrac <= 0 {
				t.Fatalf("default policy has no jitter (retry storms sync up): %+v", tc.p)
			}
			// Worst case: cap plus full jitter.
			worst := time.Duration(float64(tc.p.MaxDelay) * (1 + tc.p.JitterFrac))
			for i := 1; i <= tc.p.Attempts(); i++ {
				if d := tc.p.Delay(i); d > worst {
					t.Fatalf("Delay(%d)=%v beyond worst case %v", i, d, worst)
				}
			}
		})
	}
}

// TestExhaustedWrapping pins the error-chain contract: the wrapper
// preserves errors.Is/errors.As to the cause, Exhausted(nil) is nil, and
// IsExhausted sees through further wrapping.
func TestExhaustedWrapping(t *testing.T) {
	if Exhausted(classify, nil, 3) != nil {
		t.Fatal("Exhausted(nil) != nil")
	}
	err := Exhausted(classify, errDead, 2)
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Attempts != 2 || ex.Class != Permanent {
		t.Fatalf("Exhausted = %#v", err)
	}
	if !errors.Is(err, errDead) {
		t.Fatal("cause lost through ExhaustedError")
	}
	wrapped := errors.Join(errors.New("outer context"), err)
	if !IsExhausted(wrapped) {
		t.Fatal("IsExhausted lost through errors.Join")
	}
	if IsExhausted(errDead) {
		t.Fatal("IsExhausted on a bare cause")
	}
}
