// Package retry is the store-wide failure-handling substrate: error
// classification and bounded retry with exponential backoff and jitter.
//
// The FASTER paper assumes reliable storage (§5: eviction can never pass
// an unflushed page), but a production store must survive the device
// misbehaving. Every I/O path that can fail (hlog page flushes, pending
// record reads, recovery scans) consults a Policy: transient errors are
// retried a bounded number of times with growing, jittered delays;
// permanent errors (and exhausted budgets) are surfaced immediately so the
// store can degrade gracefully instead of busy-looping against a dead
// device.
//
// The package is stdlib-only and dependency-free, like internal/metrics,
// so every layer can import it.
package retry

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Class partitions I/O errors by how the caller should react.
type Class int

const (
	// Transient errors may succeed on retry (timeouts, injected flaky
	// faults, spurious short reads). Unknown errors default to Transient:
	// the bounded attempt budget keeps misclassification cheap.
	Transient Class = iota
	// Permanent errors will not be fixed by retrying (device gone, closed,
	// out-of-range addressing). The caller should give up immediately and
	// degrade.
	Permanent
)

func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classifier maps an error to its Class. A nil Classifier treats every
// error as Transient.
type Classifier func(error) Class

// Classify applies c, defaulting to Transient for nil classifiers and nil
// errors.
func (c Classifier) Classify(err error) Class {
	if err == nil || c == nil {
		return Transient
	}
	return c(err)
}

// Policy bounds a retry loop. The zero value is usable and means "no
// retries" (one attempt, fail on first error); use DefaultRead/DefaultWrite
// for the store defaults.
type Policy struct {
	// MaxAttempts is the total number of tries including the first.
	// Values below 1 mean 1.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. Zero means no cap.
	MaxDelay time.Duration
	// Multiplier scales the delay between consecutive retries; values
	// below 1 mean 2 (plain exponential doubling).
	Multiplier float64
	// JitterFrac spreads each delay uniformly over ±JitterFrac of itself,
	// decorrelating retry storms from many concurrent I/Os. Clamped to
	// [0, 1].
	JitterFrac float64
}

// DefaultRead is the store default for record-read paths: quick, short
// retries — a pending operation is a user-visible latency.
func DefaultRead() Policy {
	return Policy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, MaxDelay: 5 * time.Millisecond, Multiplier: 2, JitterFrac: 0.25}
}

// DefaultWrite is the store default for page-flush paths: more patient —
// a failed flush wedges the durability watermark, so it is worth riding
// out longer transient outages before poisoning the log tail.
func DefaultWrite() Policy {
	return Policy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 100 * time.Millisecond, Multiplier: 2, JitterFrac: 0.25}
}

// Attempts returns the normalized attempt budget (at least 1).
func (p Policy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// jitterState is a process-wide xorshift state for jitter; a stateful PRNG
// behind a single atomic is cheaper than seeding per call site and the
// jitter needs no statistical quality beyond decorrelation.
var jitterState atomic.Uint64

func init() { jitterState.Store(uint64(time.Now().UnixNano()) | 1) }

// nextRand returns a pseudo-random uint64 (xorshift64*).
func nextRand() uint64 {
	for {
		old := jitterState.Load()
		x := old
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		if jitterState.CompareAndSwap(old, x) {
			return x * 0x2545F4914F6CDD1D
		}
	}
}

// Delay returns the backoff before retry number retryNo (1-based: the
// delay between attempt retryNo and attempt retryNo+1), with jitter
// applied.
func (p Policy) Delay(retryNo int) time.Duration {
	if retryNo < 1 {
		retryNo = 1
	}
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	for i := 1; i < retryNo; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	jf := p.JitterFrac
	if jf < 0 {
		jf = 0
	}
	if jf > 1 {
		jf = 1
	}
	if jf > 0 && d > 0 {
		// Uniform in [d*(1-jf), d*(1+jf)].
		u := float64(nextRand()>>11) / float64(1<<53) // [0,1)
		d = d * (1 - jf + 2*jf*u)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Budget combines err with the attempt count to decide whether another
// try is allowed under the policy. attempt is 1-based (the attempt that
// just failed).
func (p Policy) Budget(classify Classifier, err error, attempt int) bool {
	if err == nil {
		return false
	}
	if classify.Classify(err) == Permanent {
		return false
	}
	return attempt < p.Attempts()
}

// ExhaustedError wraps the final error of a retry loop with the attempt
// count and class, preserving errors.Is/As on the cause.
type ExhaustedError struct {
	Attempts int
	Class    Class
	Err      error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("retry: gave up after %d attempt(s) (%v): %v", e.Attempts, e.Class, e.Err)
}

func (e *ExhaustedError) Unwrap() error { return e.Err }

// Exhausted wraps err as an ExhaustedError.
func Exhausted(classify Classifier, err error, attempts int) error {
	if err == nil {
		return nil
	}
	return &ExhaustedError{Attempts: attempts, Class: classify.Classify(err), Err: err}
}

// IsExhausted reports whether err carries an ExhaustedError.
func IsExhausted(err error) bool {
	var e *ExhaustedError
	return errors.As(err, &e)
}

// Do runs fn synchronously up to the policy's attempt budget, sleeping the
// backoff between tries and stopping early on Permanent errors. It returns
// nil on success, or the final error wrapped as an ExhaustedError.
func (p Policy) Do(classify Classifier, fn func() error) error {
	return p.DoCtx(context.Background(), classify, fn)
}

// DoCtx is Do with deadline/cancelation awareness: an already-expired
// context fails before the first attempt, and cancelation during a backoff
// sleep returns immediately instead of finishing the wait. Context errors
// are surfaced as Permanent ExhaustedErrors wrapping ctx.Err(), so
// errors.Is(err, context.DeadlineExceeded) holds for deadline expiry. A
// retry loop interrupted mid-backoff reports the attempt count reached so
// far; an already-dead context reports zero attempts.
func (p Policy) DoCtx(ctx context.Context, classify Classifier, fn func() error) error {
	if err := ctx.Err(); err != nil {
		return &ExhaustedError{Attempts: 0, Class: Permanent, Err: err}
	}
	var err error
	for attempt := 1; ; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if !p.Budget(classify, err, attempt) {
			return Exhausted(classify, err, attempt)
		}
		if err := sleepCtx(ctx, p.Delay(attempt)); err != nil {
			return &ExhaustedError{Attempts: attempt, Class: Permanent, Err: err}
		}
	}
}

// sleepCtx sleeps d unless ctx is done first, in which case it returns
// ctx.Err() immediately (draining the timer so it does not leak).
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
