package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

var (
	errFlaky = errors.New("flaky")
	errDead  = errors.New("dead")
)

func classify(err error) Class {
	if errors.Is(err, errDead) {
		return Permanent
	}
	return Transient
}

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Multiplier: 2}
	prev := time.Duration(0)
	for i := 1; i <= 6; i++ {
		d := p.Delay(i)
		if d < prev {
			t.Fatalf("delay shrank: Delay(%d)=%v < %v", i, d, prev)
		}
		if d > 8*time.Millisecond {
			t.Fatalf("Delay(%d)=%v exceeds cap", i, d)
		}
		prev = d
	}
	if p.Delay(6) != 8*time.Millisecond {
		t.Fatalf("Delay(6)=%v, want cap 8ms", p.Delay(6))
	}
}

func TestDelayJitterStaysInBounds(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, Multiplier: 2, JitterFrac: 0.5}
	varied := false
	first := p.Delay(1)
	for i := 0; i < 200; i++ {
		d := p.Delay(1)
		if d < 500*time.Microsecond || d > 1500*time.Microsecond {
			t.Fatalf("jittered delay %v outside [0.5ms, 1.5ms]", d)
		}
		if d != first {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter produced identical delays 200 times")
	}
}

func TestBudgetStopsOnPermanent(t *testing.T) {
	p := Policy{MaxAttempts: 5}
	if p.Budget(classify, errDead, 1) {
		t.Fatal("permanent error should not be retried")
	}
	if !p.Budget(classify, errFlaky, 1) {
		t.Fatal("transient error within budget should be retried")
	}
	if p.Budget(classify, errFlaky, 5) {
		t.Fatal("attempt 5 of 5 should exhaust the budget")
	}
	if p.Budget(classify, nil, 1) {
		t.Fatal("nil error is success, not retryable")
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	calls := 0
	err := p.Do(classify, func() error {
		calls++
		if calls < 3 {
			return errFlaky
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestDoStopsEarlyOnPermanent(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	calls := 0
	err := p.Do(classify, func() error { calls++; return errDead })
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, errDead) {
		t.Fatalf("cause lost: %v", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Class != Permanent || ex.Attempts != 1 {
		t.Fatalf("wrong wrapper: %#v", err)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Microsecond}
	calls := 0
	err := p.Do(classify, func() error { calls++; return errFlaky })
	if calls != 3 {
		t.Fatalf("budget of 3 made %d calls", calls)
	}
	if !IsExhausted(err) || !errors.Is(err, errFlaky) {
		t.Fatalf("Do = %v, want exhausted wrapping errFlaky", err)
	}
}

func TestZeroPolicyMeansOneAttempt(t *testing.T) {
	var p Policy
	if p.Attempts() != 1 {
		t.Fatalf("zero policy attempts = %d, want 1", p.Attempts())
	}
	calls := 0
	err := p.Do(nil, func() error { calls++; return errFlaky })
	if calls != 1 || err == nil {
		t.Fatalf("zero policy: %d calls, err=%v", calls, err)
	}
}

func TestDoCtxExpiredBeforeFirstAttempt(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	calls := 0
	err := p.DoCtx(ctx, classify, func() error { calls++; return errFlaky })
	if calls != 0 {
		t.Fatalf("expired context still made %d attempts", calls)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DoCtx = %v, want DeadlineExceeded", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Class != Permanent || ex.Attempts != 0 {
		t.Fatalf("wrong wrapper for dead-on-arrival context: %#v", err)
	}
}

func TestDoCtxCancelDuringBackoffSleep(t *testing.T) {
	// A long backoff (10s) with a 20ms deadline: the loop must abandon the
	// sleep as soon as the deadline fires instead of finishing the wait.
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	calls := 0
	start := time.Now()
	err := p.DoCtx(ctx, classify, func() error { calls++; return errFlaky })
	elapsed := time.Since(start)
	if calls != 1 {
		t.Fatalf("cancel-during-sleep made %d attempts, want 1", calls)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("backoff ignored cancelation: took %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DoCtx = %v, want DeadlineExceeded", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Class != Permanent || ex.Attempts != 1 {
		t.Fatalf("wrong wrapper for mid-backoff cancel: %#v", err)
	}
}

func TestDoCtxExplicitCancelReturnsCanceled(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := p.DoCtx(ctx, classify, func() error { return errFlaky })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("DoCtx = %v, want Canceled", err)
	}
}

func TestDoCtxBackgroundMatchesDo(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Microsecond}
	calls := 0
	err := p.DoCtx(context.Background(), classify, func() error {
		calls++
		if calls < 2 {
			return errFlaky
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("DoCtx(Background) = %v after %d calls, want nil after 2", err, calls)
	}
}

func TestNilClassifierIsTransient(t *testing.T) {
	var c Classifier
	if c.Classify(errFlaky) != Transient {
		t.Fatal("nil classifier must default to Transient")
	}
}
