package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"repro/internal/faster"
)

// AdminHandler returns the front-end's admin surface, for serving on a
// separate (never the data) listener:
//
//   - /healthz — readiness probe: 200 while the store can serve and the
//     server is not draining, 503 otherwise, with a JSON body naming the
//     health state. Load balancers use this to pull a draining or
//     degraded node out of rotation before it starts shedding.
//   - /metrics — the store's and the server's flattened metric series
//     merged into one JSON object.
//   - /debug/pprof/ — Go profiling endpoints, only with
//     Config.EnablePprof set.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		// net/http/pprof registers on DefaultServeMux in init; mirror its
		// routes here so the default mux (and whatever else registered
		// there) is never exposed.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	health := s.store.Health()
	draining := s.draining.Load()
	body := map[string]any{
		"health":      health.String(),
		"draining":    draining,
		"conns":       s.mx.connsActive.Load(),
		"in_flight":   s.mx.inflightDepth.Load(),
		"ready":       false,
		"addr":        s.Addr(),
		"health_code": int(health),
	}
	if cause := s.store.HealthCause(); cause != nil {
		body["health_cause"] = cause.Error()
	}
	// Per-shard detail: the aggregate is the worst shard, so a balancer
	// (or an operator) can see which shard is degrading the node and how
	// much of the key space is still served.
	if n := s.store.NumShards(); n > 1 {
		shardHealth := make([]string, n)
		serving := 0
		for i := 0; i < n; i++ {
			h := s.store.ShardHealth(i)
			shardHealth[i] = h.String()
			if h <= faster.Degraded {
				serving++
			}
		}
		body["shards"] = n
		body["shard_health"] = shardHealth
		body["shards_serving"] = serving
	}
	code := http.StatusServiceUnavailable
	// ReadOnly is deliberately not ready: a balancer that can't route by
	// command type must stop sending this node writes.
	if health <= faster.Degraded && !draining {
		body["ready"] = true
		code = http.StatusOK
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	series := s.store.Metrics().Series()
	for k, v := range s.Metrics().Series() {
		series[k] = v
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(series)
}
