package server

import (
	"repro/internal/metrics"
)

// serverMetrics instruments the front-end's robustness surface: every
// shed, eviction, retirement and drain is counted so that overload
// behaviour is observable, not anecdotal.
type serverMetrics struct {
	connsAccepted     metrics.Counter
	connsActive       metrics.Gauge
	connsRejected     metrics.Counter // shed at the connection cap
	deadlineEvictions metrics.Counter // slow clients killed by deadlines
	panics            metrics.Counter // handler panics recovered
	acceptRetries     metrics.Counter // transient accept-loop errors

	commands        metrics.Counter
	unknownCommands metrics.Counter
	overloadSheds   metrics.Counter // -OVERLOADED replies (semaphore/session)
	readonlyRejects metrics.Counter // -READONLY replies
	failedRejects   metrics.Counter // -FAILED sheds
	pendingTimeouts metrics.Counter // ops past OpTimeout

	sessionsRetired metrics.Counter // sessions pulled from rotation
	inflightDepth   metrics.Gauge   // commands executing right now
	compactRuns     metrics.Counter // COMPACT commands accepted

	ioAsync         metrics.Counter // misses re-routed through the io-worker pool
	ioShedTimeouts  metrics.Counter // -TIMEOUT deadline sheds (explicit, ladder-neutral)
	ioShedQueueFull metrics.Counter // -OVERLOADED io-queue-full sheds

	cmdLatency metrics.Histogram

	drains  metrics.Counter
	drainNs metrics.Gauge // duration of the last graceful drain
}

// Metrics is a point-in-time snapshot of the server counters.
type Metrics struct {
	ConnsAccepted     uint64
	ConnsActive       int64
	ConnsRejected     uint64
	DeadlineEvictions uint64
	Panics            uint64
	AcceptRetries     uint64

	Commands        uint64
	UnknownCommands uint64
	OverloadSheds   uint64
	ReadonlyRejects uint64
	FailedRejects   uint64
	PendingTimeouts uint64

	SessionsRetired   uint64
	SessionsAbandoned int64
	InflightDepth     int64
	CompactRuns       uint64

	IOAsync         uint64
	IOShedTimeouts  uint64
	IOShedQueueFull uint64

	CmdLatency metrics.HistogramSnapshot

	Drains      uint64
	LastDrainNs int64
}

// Metrics snapshots the server counters.
func (s *Server) Metrics() Metrics {
	return Metrics{
		ConnsAccepted:     s.mx.connsAccepted.Load(),
		ConnsActive:       s.mx.connsActive.Load(),
		ConnsRejected:     s.mx.connsRejected.Load(),
		DeadlineEvictions: s.mx.deadlineEvictions.Load(),
		Panics:            s.mx.panics.Load(),
		AcceptRetries:     s.mx.acceptRetries.Load(),
		Commands:          s.mx.commands.Load(),
		UnknownCommands:   s.mx.unknownCommands.Load(),
		OverloadSheds:     s.mx.overloadSheds.Load(),
		ReadonlyRejects:   s.mx.readonlyRejects.Load(),
		FailedRejects:     s.mx.failedRejects.Load(),
		PendingTimeouts:   s.mx.pendingTimeouts.Load(),
		SessionsRetired:   s.mx.sessionsRetired.Load(),
		SessionsAbandoned: s.abandoned.Load(),
		InflightDepth:     s.mx.inflightDepth.Load(),
		CompactRuns:       s.mx.compactRuns.Load(),
		IOAsync:           s.mx.ioAsync.Load(),
		IOShedTimeouts:    s.mx.ioShedTimeouts.Load(),
		IOShedQueueFull:   s.mx.ioShedQueueFull.Load(),
		CmdLatency:        s.mx.cmdLatency.Snapshot(),
		Drains:            s.mx.drains.Load(),
		LastDrainNs:       s.mx.drainNs.Load(),
	}
}

// Series flattens the snapshot into the store-wide exchange format,
// under "server." names.
func (m Metrics) Series() metrics.Series {
	s := metrics.Series{
		"server.conns_accepted":     float64(m.ConnsAccepted),
		"server.conns_active":       float64(m.ConnsActive),
		"server.conns_rejected":     float64(m.ConnsRejected),
		"server.deadline_evictions": float64(m.DeadlineEvictions),
		"server.panics":             float64(m.Panics),
		"server.accept_retries":     float64(m.AcceptRetries),
		"server.commands":           float64(m.Commands),
		"server.unknown_commands":   float64(m.UnknownCommands),
		"server.overload_sheds":     float64(m.OverloadSheds),
		"server.readonly_rejects":   float64(m.ReadonlyRejects),
		"server.failed_rejects":     float64(m.FailedRejects),
		"server.pending_timeouts":   float64(m.PendingTimeouts),
		"server.sessions_retired":   float64(m.SessionsRetired),
		"server.sessions_abandoned": float64(m.SessionsAbandoned),
		"server.inflight_depth":     float64(m.InflightDepth),
		"server.compact_runs":       float64(m.CompactRuns),
		"server.io_async":           float64(m.IOAsync),
		"server.io_shed_timeouts":   float64(m.IOShedTimeouts),
		"server.io_shed_queue_full": float64(m.IOShedQueueFull),
		"server.drains":             float64(m.Drains),
		"server.last_drain_ns":      float64(m.LastDrainNs),
	}
	s.AddHistogram("server.cmd_latency", m.CmdLatency)
	return s
}
