// Package server is the FASTER network front-end: a RESP2-speaking TCP
// server over a sharded FASTER store, designed around failure from day
// one.
//
// The front-end is cluster-aware: it serves a *faster.ShardedStore
// whose shards are independent stores (own index, log, epoch domain,
// io-pool and checkpoint generation) behind consistent-hash routing.
// Single-key commands route to their key's shard; pipelined windows and
// the multi-key MGET/MSET split into concurrent per-shard sub-batches
// inside the session facade and rejoin in command order. The health
// ladder is per shard: one poisoned shard degrades or sheds only the
// keys it owns while its siblings keep full service, and only a fully
// failed ensemble sheds connections. ListenAndServe wraps a flat store
// as a one-shard ensemble, so the single-store behaviour is unchanged.
//
// The ROADMAP's north star is a store "serving heavy traffic from
// millions of users"; what turns a storage engine into such a service is
// not the happy path but the overload and failure behaviour of the layer
// in front of it. Skewed workloads concentrate load on hot keys and hot
// connections (F2, Kanellis et al.), so shedding and bounded queueing
// are correctness concerns; unbounded per-request threading stalls the
// whole store (Lomet & Wang), so work is admitted through a bounded
// session pool in front of FASTER's epoch-slot sessions. Concretely:
//
//   - Connection cap: beyond Config.MaxConns, new connections receive
//     "-OVERLOADED max connections" and are closed — shed, not queued.
//   - Admission semaphore: at most Config.MaxInFlight commands execute
//     at once; excess requests are answered "-OVERLOADED" immediately
//     instead of queueing unboundedly.
//   - Bounded session pool: Config.Sessions FASTER sessions are created
//     up front and multiplexed across connections, so connection churn
//     can never exhaust the store's epoch-table slots.
//   - Deadlines: idle/read and write deadlines evict slow or wedged
//     clients instead of parking handler goroutines forever.
//   - Accept-loop backoff: transient accept errors retry under a bounded
//     internal/retry policy with the device-style error classification.
//   - Panic recovery: a panicking handler closes its connection and is
//     counted; the server keeps serving.
//   - Health ladder: with the store ReadOnly, writes fail fast with
//     "-READONLY" while reads keep serving; with the store Failed, data
//     commands are shed with "-FAILED" and the connection is closed.
//   - Graceful drain: Close (or SIGTERM in cmd/faster-server) stops
//     accepting, lets in-flight commands finish under a deadline, drains
//     every pooled session via CompletePendingTimeout, and optionally
//     takes a final checkpoint — provably leak-free (the chaos soak
//     asserts zero leaked goroutines under -race).
//
// Protocol: GET/SET/DEL return Redis-shaped replies; MGET/MSET execute
// multi-key windows as per-shard fan-outs; INCRBY maps onto FASTER's
// RMW with faster.VarLenOps counter semantics (the store must be opened
// with Ops: faster.VarLenOps{}); PING/ECHO/QUIT/COMMAND cover interop.
// Values are framed server-side with faster.VarLenEncode.
//
// Exactly-once sessions (the CPR session extension): "SESSION <guid>"
// binds the connection to a durable store session and replies :<acked>,
// the highest serial whose effect is guaranteed recovered after a crash
// (the committed frontier). A bound connection may tag SET/DEL/INCRBY
// with a trailing "SERIAL <n>"; serials are issued by the client,
// starting at frontier+1 and increasing by one. A stamped op that
// applies replies "+ACK <n> <result>"; re-delivering the frontier serial
// replays the saved reply without re-executing; serials at or below the
// frontier are fenced with -STALE, serials that skip ahead with a serial
// gap error, and a connection whose GUID was re-bound elsewhere gets
// -FENCED. After a crash the client re-issues SESSION, reads the
// recovered frontier from the reply, and resends everything above it —
// each retried op applies exactly once. Stamped SETs join pipelined
// ExecBatch windows; a window commits its serial run in order and stops
// acking at the first failed op, so the client's resend-from-frontier
// rule stays sufficient (uncommitted SET re-application is idempotent;
// non-idempotent INCRBY always executes as a window barrier).
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faster"
	"repro/internal/resp"
	"repro/internal/retry"
)

// Config tunes the front-end's robustness surface. The zero value of
// every field selects a sensible default.
type Config struct {
	// MaxConns caps concurrently served connections (default 256).
	// Excess connections are shed with -OVERLOADED at accept time.
	MaxConns int
	// MaxInFlight caps commands executing at once across all
	// connections (default 4*Sessions). Excess requests are shed with
	// -OVERLOADED, never queued unboundedly.
	MaxInFlight int
	// Sessions is the FASTER session-pool size (default 16). It must not
	// exceed the store's MaxSessions.
	Sessions int

	// IdleTimeout bounds the wait for the first byte of the next command
	// on a connection (default 5m); ReadTimeout bounds every subsequent
	// read once bytes have started flowing, so a client cannot stall
	// half-way through a command and pin a handler (default 10s);
	// WriteTimeout bounds flushing replies (default 10s). Deadline hits
	// evict the client.
	IdleTimeout  time.Duration
	ReadTimeout  time.Duration
	WriteTimeout time.Duration

	// AcquireTimeout bounds the wait for a pooled session (default
	// 100ms); on expiry the request is shed with -OVERLOADED.
	AcquireTimeout time.Duration
	// OpTimeout bounds CompletePendingTimeout for one command's
	// asynchronous I/O (default 5s).
	OpTimeout time.Duration
	// DrainTimeout bounds the graceful drain in Close (default 10s).
	DrainTimeout time.Duration

	// MaxValueBytes rejects oversized SET values (default 512 KiB).
	MaxValueBytes int

	// AcceptRetry bounds accept-loop backoff on transient errors; the
	// zero value selects a patient default (~1s cumulative).
	AcceptRetry retry.Policy

	// CheckpointDir, when set, makes the graceful drain finish with a
	// store checkpoint into this directory (skipped when the store's
	// write path is already gone).
	CheckpointDir string

	// EnablePprof mounts net/http/pprof profiling handlers under
	// /debug/pprof/ on the admin mux. The admin listener is expected to
	// be private; still, profiling is off unless asked for.
	EnablePprof bool
}

func (c *Config) setDefaults() {
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.Sessions <= 0 {
		c.Sessions = 16
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * c.Sessions
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.AcquireTimeout <= 0 {
		c.AcquireTimeout = 100 * time.Millisecond
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxValueBytes <= 0 {
		c.MaxValueBytes = 512 << 10
	}
	if c.AcceptRetry == (retry.Policy{}) {
		c.AcceptRetry = retry.Policy{MaxAttempts: 8, BaseDelay: time.Millisecond,
			MaxDelay: 250 * time.Millisecond, Multiplier: 2, JitterFrac: 0.25}
	}
}

// ErrDrainTimeout reports that graceful drain hit its deadline and had
// to force-close connections or abandon session drains.
var ErrDrainTimeout = errors.New("server: graceful drain exceeded its deadline")

// Server is a running front-end.
type Server struct {
	store *faster.ShardedStore
	cfg   Config
	ln    net.Listener

	sessions chan *faster.ShardedSession
	inflight chan struct{}

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	wg        sync.WaitGroup
	done      chan struct{}
	draining  atomic.Bool
	closeOnce sync.Once
	closeErr  error

	abandoned atomic.Int64 // sessions whose pendings never drained

	mx serverMetrics
}

// ListenAndServe starts a front-end for a flat store on addr
// ("127.0.0.1:0" picks a free port; see Addr). The store is served as a
// one-shard ensemble; semantics are identical to the pre-sharding
// server.
func ListenAndServe(store *faster.Store, addr string, cfg Config) (*Server, error) {
	ss, err := faster.NewShardedFromStores([]*faster.Store{store})
	if err != nil {
		return nil, err
	}
	return ListenAndServeSharded(ss, addr, cfg)
}

// ListenAndServeSharded starts a cluster-aware front-end over a sharded
// store: commands route to their keys' shards, pipelined and multi-key
// windows fan out per shard, and the health ladder gates per shard.
func ListenAndServeSharded(store *faster.ShardedStore, addr string, cfg Config) (*Server, error) {
	cfg.setDefaults()
	if cfg.Sessions > store.MaxSessions() {
		return nil, fmt.Errorf("server: %d sessions exceed the store's cap of %d",
			cfg.Sessions, store.MaxSessions())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		store:    store,
		cfg:      cfg,
		ln:       ln,
		sessions: make(chan *faster.ShardedSession, cfg.Sessions),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	for i := 0; i < cfg.Sessions; i++ {
		// Pooled sessions are parked while idle: they keep their
		// epoch-table slot but pin no epoch, so an idle pool never stalls
		// the store's flush/eviction machinery for active sessions.
		//
		// They are also resident-only: a storage miss returns WouldBlock
		// instead of going Pending, and the handler re-routes the miss
		// through the store's io-worker pool after releasing the session
		// and admission token — no pooled session ever blocks on device
		// I/O, so a device latency spike slows only the cold misses that
		// touch it while hot in-memory traffic keeps its full speed.
		sess := store.StartSession()
		sess.SetResidentOnly(true)
		sess.Park()
		s.sessions <- sess
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Store exposes shard 0's flat store (single-shard servers, tests).
func (s *Server) Store() *faster.Store { return s.store.Shard(0) }

// Sharded exposes the full ensemble being served.
func (s *Server) Sharded() *faster.ShardedStore { return s.store }

// allShardsFailed reports whether every shard has lost its device — the
// only condition under which the ensemble as a whole sheds connections.
func (s *Server) allShardsFailed() bool {
	for i := 0; i < s.store.NumShards(); i++ {
		if s.store.ShardHealth(i) != faster.Failed {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Accept loop
// ---------------------------------------------------------------------------

// classifyAcceptErr maps accept errors onto the retry taxonomy: a closed
// listener is permanent (shutdown); timeouts, EMFILE bursts and other
// transient conditions are retried under the bounded policy.
func classifyAcceptErr(err error) retry.Class {
	if errors.Is(err, net.ErrClosed) {
		return retry.Permanent
	}
	return retry.Transient
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	failures := 0
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			failures++
			s.mx.acceptRetries.Inc()
			if !s.cfg.AcceptRetry.Budget(classifyAcceptErr, err, failures) {
				return
			}
			select {
			case <-time.After(s.cfg.AcceptRetry.Delay(failures)):
			case <-s.done:
				return
			}
			continue
		}
		failures = 0

		if !s.trackConn(conn) {
			// Connection cap: shed with an explicit error, never queue.
			s.mx.connsRejected.Inc()
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			w := resp.NewWriter(conn)
			w.WriteError("OVERLOADED max connections")
			w.Flush()
			conn.Close()
			continue
		}
		s.mx.connsAccepted.Inc()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// trackConn registers conn, failing when the cap is reached or the
// server is draining.
func (s *Server) trackConn(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining.Load() || len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	s.mx.connsActive.Inc()
	return true
}

func (s *Server) untrackConn(conn net.Conn) {
	s.connMu.Lock()
	if _, ok := s.conns[conn]; ok {
		delete(s.conns, conn)
		s.mx.connsActive.Dec()
	}
	s.connMu.Unlock()
}

func (s *Server) closeConns() {
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
}

// ---------------------------------------------------------------------------
// Connection handler
// ---------------------------------------------------------------------------

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrackConn(conn)
	defer conn.Close()
	// Panic recovery: one handler's bug (or a poisoned input) costs one
	// connection, not the process.
	defer func() {
		if r := recover(); r != nil {
			s.mx.panics.Inc()
		}
	}()

	c := &connState{
		s:    s,
		conn: conn,
		r: resp.NewReaderLimits(&slowConn{Conn: conn, per: s.cfg.ReadTimeout},
			resp.Limits{MaxBulk: s.cfg.MaxValueBytes + 1}),
		w:    resp.NewWriter(conn),
		out:  make([]byte, 8+s.cfg.MaxValueBytes),
		cmds: make([]resp.Command, maxWindowCmds),
	}
	// The durable session entry outlives the connection (that is the
	// point), but this connection's ownership of it does not.
	defer func() {
		if c.token != nil {
			c.token.Release()
		}
	}()
	closing := false
	for !closing {
		// The idle deadline bounds the wait for the command's first byte;
		// slowConn then bumps the deadline to the tighter ReadTimeout on
		// every delivering read, so a half-sent command cannot pin this
		// handler past ReadTimeout (slowloris defence).
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		if err := c.r.ReadCommandInto(&c.cmds[0]); err != nil {
			if isTimeout(err) {
				s.mx.deadlineEvictions.Inc()
			}
			return
		}
		// Extend the window while pipelined input is already buffered, so
		// a burst executes as batches instead of one command at a time.
		// The byte budget bounds the decoded arguments a window may pin.
		n, window := 1, c.cmds[0].Size()
		for n < maxWindowCmds && window < windowByteBudget && c.r.Buffered() > 0 {
			if err := c.r.ReadCommandInto(&c.cmds[n]); err != nil {
				// Framing is lost: serve what was decoded, then close.
				closing = true
				break
			}
			window += c.cmds[n].Size()
			n++
		}
		if !c.processWindow(c.cmds[:n]) {
			closing = true
		}
		// Batch replies across a pipelined burst: flush only when no
		// further input is already buffered.
		if closing || c.r.Buffered() == 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if err := c.w.Flush(); err != nil {
				if isTimeout(err) {
					s.mx.deadlineEvictions.Inc()
				}
				return
			}
		}
	}
}

// processWindow executes a decoded window in order: maximal runs of
// batchable commands go through dataBatch, everything else through the
// single-command dispatch. Returns false when the connection must close.
func (c *connState) processWindow(cmds []resp.Command) bool {
	for i := 0; i < len(cmds); {
		if !c.batchable(&cmds[i]) {
			if !c.dispatch(cmds[i].Args) {
				return false
			}
			i++
			continue
		}
		j := i + 1
		for j < len(cmds) && c.batchable(&cmds[j]) {
			j++
		}
		if j-i == 1 {
			if !c.dispatch(cmds[i].Args) {
				return false
			}
		} else if !c.dataBatch(cmds[i:j]) {
			return false
		}
		i = j
	}
	return true
}

// batchable reports whether cmd can join a store batch: a well-formed
// GET or SET. Malformed forms keep their single-command error replies,
// and everything else (DEL, INCRBY, PING, QUIT, ...) is a barrier the
// window executes in place.
func (c *connState) batchable(cmd *resp.Command) bool {
	if testPanicCommand != "" {
		return false // preserve injected-panic semantics in tests
	}
	if cmd.Is("GET") {
		return len(cmd.Args) == 2 && len(cmd.Args[1]) > 0
	}
	if cmd.Is("SET") {
		if len(cmd.Args) == 3 {
			return len(cmd.Args[1]) > 0 && len(cmd.Args[2]) <= c.s.cfg.MaxValueBytes
		}
		// Serial-stamped form (SET key value SERIAL n) joins the batch
		// when the connection is bound; otherwise the single-op path
		// renders the proper protocol error.
		if len(cmd.Args) == 5 && c.token != nil {
			serial, _, errMsg := splitSerial(cmd.Args)
			return serial > 0 && errMsg == "" && len(cmd.Args[1]) > 0 &&
				len(cmd.Args[2]) <= c.s.cfg.MaxValueBytes
		}
		return false
	}
	return false
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// slowConn is the read side of a connection with per-read deadline
// renewal: every read that delivers bytes pushes the deadline out by
// per. The handler's idle deadline governs the silent wait before a
// command; this governs the flow once bytes started arriving.
type slowConn struct {
	net.Conn
	per time.Duration
}

func (c *slowConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && c.per > 0 {
		c.Conn.SetReadDeadline(time.Now().Add(c.per))
	}
	return n, err
}

// Pipelining window shape: a burst of buffered commands is decoded into
// pooled per-slot storage and executed as store batches.
const (
	// maxWindowCmds caps commands decoded per window (the ExecBatch size).
	maxWindowCmds = 64
	// windowByteBudget caps the decoded argument bytes a window may pin.
	windowByteBudget = 256 << 10
	// slotOutBytes sizes the pooled per-slot GET output (frame header +
	// payload); larger stored values take the exact-size fallback re-read.
	slotOutBytes = 8 + 4096
	// inlineReplyMax is the largest GET payload copied into the reply
	// scratch; larger payloads ride as their own vectored-write element,
	// straight from the slot buffer.
	inlineReplyMax = 512
)

// replySeg marks a boundary in the batched reply scratch: everything up
// to end is one net.Buffers element, followed by payload (when non-nil)
// as a zero-copy element of its own.
type replySeg struct {
	end     int
	payload []byte
}

// connState is one connection's parsing and reply state. The batch
// fields are pooled per connection so a steady pipelined workload
// decodes, executes and replies without per-command allocations.
type connState struct {
	s    *Server
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
	out  []byte // read output buffer: 8-byte frame header + max value

	cmds  []resp.Command   // per-slot pooled command decode storage
	bops  []faster.BatchOp // batch ops, 1:1 with the run's executable commands
	outs  [][]byte         // per-slot pooled GET outputs (lazily allocated)
	val   []byte           // arena for the run's framed SET values
	reply []byte           // reply scratch for the vectored write
	segs  []replySeg
	vecs  net.Buffers

	// Asynchronous miss state: async describes a command step that hit
	// WouldBlock on the resident-only session and must continue through
	// the io-worker pool once the session and admission token are back in
	// their pools; ioch is the reusable completion channel the pool's
	// done callback delivers into (buffered, so a late delivery after a
	// defensive timeout can never block a worker).
	async asyncCmd
	ioch  chan faster.Result

	// Exactly-once session state: token is the connection's durable
	// sharded session binding (SESSION <guid>), released on teardown; a
	// stamped operation runs under its key's shard token. nextSerial is
	// the connection's stream-wide gap detector — sparse per-shard serial
	// tables admit any forward serial, so only the connection (which sees
	// the whole stream) can reject one that skips ahead. smeta and slotop
	// carry per-slot serial bookkeeping through a batched run: slotop[i]
	// indexes the slot's BatchOp, or -1 when the serial verdict resolved
	// the slot without executing (replay/stale/gap/fenced).
	token      *faster.ShardedToken
	nextSerial uint64
	smeta      []slotMeta
	slotop     []int
	slotTok    []*faster.SessionToken // per-slot shard token (batch pre-scan)
	winOpen    []bool                 // per-shard open-window marks (batch scratch)
	ackBuf     []byte                 // scratch for rendering "ACK <serial> <result>" bodies
}

// asyncCmd is a command continuation for a WouldBlock miss: the step of
// the command that must resume through the io-worker pool. kind 0 means
// no continuation is pending.
type asyncCmd struct {
	kind  byte   // 'G' = GET, 'I' = INCRBY
	key   []byte // borrowed from the window's decode storage
	delta int64  // INCRBY operand
	step  int    // INCRBY resume point: 0 pre-read, 1 RMW, 2 post-read
}

// slotMeta is one batched slot's serial bookkeeping. verdict is only
// meaningful when serial > 0; saved holds the reply body to emit for
// replayed and committed slots; tok is the key's shard token the serial
// was admitted on.
type slotMeta struct {
	serial    uint64
	verdict   faster.SerialVerdict
	saved     []byte
	tok       *faster.SessionToken
	committed bool
}

// testPanicCommand, when set (tests only, before serving starts), makes
// dispatch panic on that command — the recovery tests use it to prove a
// handler panic costs one connection, not the process.
var testPanicCommand string

// dispatch executes one command; false means the connection must close.
func (c *connState) dispatch(args [][]byte) bool {
	s := c.s
	s.mx.commands.Inc()
	if testPanicCommand != "" && len(args) > 0 && commandName(args[0]) == testPanicCommand {
		panic("injected handler panic: " + testPanicCommand)
	}
	if len(args) == 0 {
		c.w.WriteError("ERR empty command")
		return true
	}
	name := commandName(args[0])
	switch name {
	case "PING":
		if len(args) > 1 {
			c.w.WriteBulk(args[1])
		} else {
			c.w.WriteSimple("PONG")
		}
		return true
	case "ECHO":
		if len(args) != 2 {
			c.w.WriteError("ERR wrong number of arguments for 'echo'")
			return true
		}
		c.w.WriteBulk(args[1])
		return true
	case "COMMAND":
		// Enough for redis-cli's handshake.
		c.w.WriteArrayHeader(0)
		return true
	case "QUIT":
		c.w.WriteSimple("OK")
		return false
	case "GET", "SET", "DEL", "INCRBY":
		ok := c.dataCommand(name, args)
		if c.async.kind != 0 {
			// The command hit a storage miss on the resident-only session.
			// dataCommand's deferred releases have already returned the
			// session and admission token, so the continuation holds
			// nothing that hot traffic needs — only this connection waits.
			a := c.async
			c.async = asyncCmd{}
			if ok {
				c.runAsync(&a)
			}
		}
		return ok
	case "MGET":
		return c.doMGet(args)
	case "MSET":
		return c.doMSet(args)
	case "SESSION":
		return c.doSession(args)
	case "COMPACT":
		return c.doCompact(args)
	case "MEMORY":
		return c.doMemory(args)
	default:
		s.mx.unknownCommands.Inc()
		c.w.WriteError(fmt.Sprintf("ERR unknown command '%s'", name))
		return true
	}
}

// commandName upper-cases an ASCII command word without allocating for
// the already-uppercase common case.
func commandName(b []byte) string {
	for _, ch := range b {
		if 'a' <= ch && ch <= 'z' {
			up := make([]byte, len(b))
			for i, c := range b {
				if 'a' <= c && c <= 'z' {
					c -= 'a' - 'A'
				}
				up[i] = c
			}
			return string(up)
		}
	}
	return string(b)
}

// dataCommand runs a store-touching command under the health gate, the
// admission semaphore and the session pool. Returns false to close the
// connection (Failed sheds).
func (c *connState) dataCommand(name string, args [][]byte) bool {
	s := c.s
	isWrite := name != "GET"

	// Exactly-once stamping: strip a trailing "SERIAL <n>" before the
	// gates so malformed stamps are rejected without burning admission.
	serial, sargs, serr := splitSerial(args)
	if serr != "" {
		c.w.WriteError(serr)
		return true
	}
	if serial > 0 {
		if !isWrite {
			c.w.WriteError("ERR SERIAL is not allowed on reads")
			return true
		}
		if c.token == nil {
			c.w.WriteError("ERR no session bound; send SESSION <guid> first")
			return true
		}
		if name == "DEL" && len(sargs) != 2 {
			// A serial lives on exactly one shard — its key's — so a
			// stamped DEL cannot span the key space.
			c.w.WriteError("ERR a stamped DEL takes exactly one key")
			return true
		}
	}
	args = sargs

	// Health ladder, per shard: the command is gated by the health of the
	// shards its keys route to, so one poisoned shard degrades only its
	// own keys. ReadOnly: writes fail fast, reads keep serving. Failed:
	// the key is unservable, but the connection is shed only when every
	// shard is gone — siblings keep serving their keys.
	var kh faster.Health
	if len(args) >= 2 {
		if name == "DEL" {
			for _, k := range args[1:] {
				if h := s.store.HealthFor(k); h > kh {
					kh = h
				}
			}
		} else {
			kh = s.store.HealthFor(args[1])
		}
	}
	switch kh {
	case faster.Failed:
		s.mx.failedRejects.Inc()
		c.w.WriteError("FAILED store failed (device lost)")
		return !s.allShardsFailed()
	case faster.ReadOnly:
		if isWrite {
			s.mx.readonlyRejects.Inc()
			c.w.WriteError("READONLY store is read-only (write path lost)")
			return true
		}
	}

	// Admission: a full semaphore sheds immediately — the explicit
	// -OVERLOADED contract, never an unbounded queue.
	select {
	case s.inflight <- struct{}{}:
	default:
		s.mx.overloadSheds.Inc()
		c.w.WriteError("OVERLOADED too many requests in flight")
		return true
	}
	defer func() { <-s.inflight }()
	s.mx.inflightDepth.Inc()
	defer s.mx.inflightDepth.Dec()

	// Session pool: bounded wait, then shed. Fast path first.
	sess, shed, down := s.acquireSession()
	if down {
		c.w.WriteError("ERR server shutting down")
		return false
	}
	if shed {
		c.w.WriteError("OVERLOADED no session available")
		return true
	}
	sess.Unpark()
	healthy := true
	defer func() {
		if healthy {
			sess.Park()
			s.sessions <- sess
		} else {
			s.retireSession(sess)
		}
	}()

	start := time.Now()
	defer func() { s.mx.cmdLatency.Observe(time.Since(start)) }()

	if serial > 0 {
		// Stamped ops stay on the synchronous pinned-session path: the
		// serial window must not stay open across an out-of-band pool
		// completion. Blocking I/O is allowed again for the duration, with
		// the op deadline propagated down to the device retry chain so a
		// wedged device sheds the op with -TIMEOUT (serial retryable,
		// health ladder untouched) instead of pinning the handler.
		sess.SetResidentOnly(false)
		sess.SetOpDeadline(start.Add(s.cfg.OpTimeout))
		healthy = c.doStamped(sess, name, args, serial)
		sess.SetOpDeadline(time.Time{})
		sess.SetResidentOnly(true)
		return true
	}
	switch name {
	case "GET":
		healthy = c.doGet(sess, args)
	case "SET":
		healthy = c.doSet(sess, args)
	case "DEL":
		healthy = c.doDel(sess, args)
	case "INCRBY":
		healthy = c.doIncrBy(sess, args)
	}
	return true
}

// splitSerial strips a trailing "SERIAL <n>" argument pair. serial is 0
// (with the args untouched) when the command is unstamped; a non-empty
// errMsg reports a malformed stamp.
func splitSerial(args [][]byte) (serial uint64, rest [][]byte, errMsg string) {
	if len(args) < 4 || commandName(args[len(args)-2]) != "SERIAL" {
		return 0, args, ""
	}
	n, err := strconv.ParseUint(string(args[len(args)-1]), 10, 64)
	if err != nil || n == 0 {
		return 0, args, "ERR SERIAL must be a positive integer"
	}
	return n, args[:len(args)-2], ""
}

// doSession binds the connection to a durable exactly-once session and
// replies :<acked>, the committed frontier the client must resume from.
// Rebinding a GUID (from this or another connection) fences the previous
// owner's pending serials.
func (c *connState) doSession(args [][]byte) bool {
	if len(args) != 2 || len(args[1]) == 0 {
		c.w.WriteError("ERR wrong number of arguments for 'session'")
		return true
	}
	tok, acked, _, err := c.s.store.BindSession(string(args[1]))
	if err != nil {
		c.w.WriteError("ERR " + err.Error())
		return true
	}
	if c.token != nil {
		c.token.Release()
	}
	c.token = tok
	// The frontier is the maximum committed serial across shards; the
	// barrier inside the sharded checkpoint guarantees the committed
	// serials form a prefix, so frontier+1 is the next expected serial.
	c.nextSerial = acked + 1
	c.w.WriteInt(int64(acked))
	return true
}

// doStamped executes one serial-tagged write under the key's shard
// window discipline: admit the serial on the shard owning the key, run
// the op, commit the rendered reply crash-atomically with respect to
// checkpoints, then acknowledge with "+ACK <serial> <result>".
// Non-apply verdicts resolve without touching the store. The shard
// token only orders its own sub-stream, so the connection-level
// nextSerial check rejects serials that skip ahead of the whole stream.
func (c *connState) doStamped(sess *faster.ShardedSession, name string, args [][]byte, serial uint64) bool {
	tok := c.token.For(args[1])
	tok.WindowEnter()
	v, saved := tok.Check(serial)
	if v == faster.SerialApply && serial > c.nextSerial {
		// Exiting the window rolls the admission back, so the serial
		// stays retryable once the client fills the gap.
		tok.WindowExit()
		c.w.WriteError(fmt.Sprintf("ERR serial %d skips the next expected serial", serial))
		return true
	}
	switch v {
	case faster.SerialApply:
	case faster.SerialReplay:
		tok.WindowExit()
		c.w.WriteSimple(string(saved))
		return true
	case faster.SerialStale:
		tok.WindowExit()
		c.w.WriteError(fmt.Sprintf("STALE serial %d is at or below the committed frontier", serial))
		return true
	case faster.SerialGap:
		tok.WindowExit()
		c.w.WriteError(fmt.Sprintf("ERR serial %d skips the next expected serial", serial))
		return true
	default: // SerialFenced
		tok.WindowExit()
		c.w.WriteError("FENCED session was re-bound by a newer connection")
		return true
	}

	var (
		result  int64
		isInt   bool
		ok      bool
		healthy bool
	)
	switch name {
	case "SET":
		ok, healthy = c.setCore(sess, args)
	case "DEL":
		result, ok, healthy = c.delCore(sess, args)
		isInt = true
	default: // INCRBY
		result, ok, healthy = c.incrByCore(sess, args)
		isInt = true
	}
	if !ok {
		// The op's error reply is already written. Exiting the window
		// rolls the admission back, so the client may retry this serial.
		tok.WindowExit()
		return healthy
	}
	body := c.ackBuf[:0]
	body = append(body, "ACK "...)
	body = strconv.AppendUint(body, serial, 10)
	body = append(body, ' ')
	if isInt {
		body = strconv.AppendInt(body, result, 10)
	} else {
		body = append(body, "OK"...)
	}
	c.ackBuf = body
	tok.Commit(serial, body)
	tok.WindowExit()
	c.nextSerial = serial + 1
	c.w.WriteSimple(string(body))
	return healthy
}

// acquireSession takes a pooled session under the acquire timeout.
// shed means the pool stayed empty past the timeout (-OVERLOADED);
// down means the server is shutting down (close the connection).
func (s *Server) acquireSession() (sess *faster.ShardedSession, shed, down bool) {
	select {
	case sess = <-s.sessions:
		return sess, false, false
	default:
	}
	t := time.NewTimer(s.cfg.AcquireTimeout)
	select {
	case sess = <-s.sessions:
		t.Stop()
		return sess, false, false
	case <-t.C:
		s.mx.overloadSheds.Inc()
		return nil, true, false
	case <-s.done:
		t.Stop()
		return nil, false, true
	}
}

// retireSession handles a session whose pending operations outlived the
// per-op deadline: it is pulled from rotation and drained off the hot
// path; if the drain completes the session rejoins the pool, otherwise
// it is abandoned (counted — its epoch slot is lost until restart, which
// is the correct trade against a handler goroutine wedged forever).
func (s *Server) retireSession(sess *faster.ShardedSession) {
	s.mx.sessionsRetired.Inc()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				s.mx.panics.Inc()
				s.abandoned.Add(1)
			}
		}()
		if _, err := sess.CompletePendingTimeout(2 * s.cfg.OpTimeout); err == nil {
			sess.Park()
			s.sessions <- sess
			return
		}
		// Abandoned: never Close (it would block on the wedged op), but
		// park it so the dead session at least stops pinning the epoch —
		// otherwise one wedged client request would stall flushes and
		// evictions for every other session until restart.
		sess.Park()
		s.abandoned.Add(1)
	}()
}

// ---------------------------------------------------------------------------
// Command execution
// ---------------------------------------------------------------------------

// opToken is the ctx attached to asynchronous operations so their
// results can be matched out of CompletePending.
type opToken struct{}

// drainPending completes one Pending operation under the op deadline.
func (c *connState) drainPending(sess *faster.ShardedSession, token *opToken) (faster.Result, bool) {
	results, err := sess.CompletePendingTimeout(c.s.cfg.OpTimeout)
	if err != nil {
		c.s.mx.pendingTimeouts.Inc()
		c.w.WriteError("TIMEOUT operation did not complete in time")
		return faster.Result{}, false
	}
	for _, r := range results {
		if r.Ctx == token {
			return r, true
		}
	}
	// The session had no foreign work (one command at a time), so a
	// missing result is a bug worth surfacing loudly.
	c.w.WriteError("ERR internal: pending result lost")
	return faster.Result{}, false
}

// writeStoreErr renders a store error as a RESP error reply. Deadline
// and admission sheds from the io-worker pool are explicit, counted
// replies — back-pressure, not silent drops — and deliberately do not
// retire sessions or feed the health ladder.
func (c *connState) writeStoreErr(err error) {
	switch {
	case errors.Is(err, faster.ErrOpDeadline):
		c.s.mx.ioShedTimeouts.Inc()
		c.w.WriteError("TIMEOUT operation deadline expired")
	case errors.Is(err, faster.ErrIOQueueFull):
		c.s.mx.ioShedQueueFull.Inc()
		c.w.WriteError("OVERLOADED io queue full")
	case errors.Is(err, faster.ErrStoreClosed):
		c.w.WriteError("ERR server shutting down")
	case errors.Is(err, faster.ErrReadOnly):
		c.s.mx.readonlyRejects.Inc()
		c.w.WriteError("READONLY store is read-only (write path lost)")
	case errors.Is(err, faster.ErrStoreFailed):
		c.s.mx.failedRejects.Inc()
		c.w.WriteError("FAILED store failed (device lost)")
	default:
		c.w.WriteError("ERR " + err.Error())
	}
}

func (c *connState) doGet(sess *faster.ShardedSession, args [][]byte) bool {
	if len(args) != 2 || len(args[1]) == 0 {
		c.w.WriteError("ERR wrong number of arguments for 'get'")
		return true
	}
	st, err, ok := c.readValue(sess, args[1])
	if !ok {
		return false
	}
	switch st {
	case faster.OK:
		payload, ok := faster.VarLenDecode(c.out)
		if !ok {
			c.w.WriteError("ERR stored value exceeds server read buffer")
			return true
		}
		c.w.WriteBulk(payload)
	case faster.NotFound:
		c.w.WriteNil()
	case faster.WouldBlock:
		c.async = asyncCmd{kind: 'G', key: args[1]}
	default:
		c.writeStoreErr(err)
	}
	return true
}

// readValue reads args key into c.out, draining a Pending completion.
// ok=false means the session must be retired (pending timeout).
func (c *connState) readValue(sess *faster.ShardedSession, key []byte) (faster.Status, error, bool) {
	return c.readInto(sess, key, c.out)
}

// readInto is readValue with an explicit output buffer.
func (c *connState) readInto(sess *faster.ShardedSession, key, out []byte) (faster.Status, error, bool) {
	token := &opToken{}
	st, err := sess.Read(key, nil, out, token)
	if st == faster.Pending {
		r, ok := c.drainPending(sess, token)
		if !ok {
			return faster.Err, nil, false
		}
		st, err = r.Status, r.Err
	}
	return st, err, true
}

func (c *connState) doSet(sess *faster.ShardedSession, args [][]byte) bool {
	ok, healthy := c.setCore(sess, args)
	if ok {
		c.w.WriteSimple("OK")
	}
	return healthy
}

// setCore validates and executes a SET. ok=false means an error reply
// has already been written; healthy=false retires the session.
func (c *connState) setCore(sess *faster.ShardedSession, args [][]byte) (ok, healthy bool) {
	if len(args) != 3 || len(args[1]) == 0 {
		c.w.WriteError("ERR wrong number of arguments for 'set'")
		return false, true
	}
	if len(args[2]) > c.s.cfg.MaxValueBytes {
		c.w.WriteError(fmt.Sprintf("ERR value exceeds %d bytes", c.s.cfg.MaxValueBytes))
		return false, true
	}
	st, err := sess.Upsert(args[1], faster.VarLenEncode(args[2]))
	if st != faster.OK {
		c.writeStoreErr(err)
		return false, true
	}
	return true, true
}

func (c *connState) doDel(sess *faster.ShardedSession, args [][]byte) bool {
	deleted, ok, healthy := c.delCore(sess, args)
	if ok {
		c.w.WriteInt(deleted)
	}
	return healthy
}

// delCore validates and executes a DEL, returning the deleted count.
func (c *connState) delCore(sess *faster.ShardedSession, args [][]byte) (deleted int64, ok, healthy bool) {
	if len(args) < 2 {
		c.w.WriteError("ERR wrong number of arguments for 'del'")
		return 0, false, true
	}
	for _, key := range args[1:] {
		if len(key) == 0 {
			continue
		}
		st, err := sess.Delete(key)
		switch st {
		case faster.OK:
			deleted++
		case faster.NotFound:
		default:
			c.writeStoreErr(err)
			return 0, false, true
		}
	}
	return deleted, true, true
}

func (c *connState) doIncrBy(sess *faster.ShardedSession, args [][]byte) bool {
	n, ok, healthy := c.incrByCore(sess, args)
	if ok {
		c.w.WriteInt(n)
	}
	return healthy
}

// incrByCore validates and executes an INCRBY, returning the updated
// counter value.
func (c *connState) incrByCore(sess *faster.ShardedSession, args [][]byte) (n int64, ok, healthy bool) {
	if len(args) != 3 || len(args[1]) == 0 {
		c.w.WriteError("ERR wrong number of arguments for 'incrby'")
		return 0, false, true
	}
	delta, perr := strconv.ParseInt(string(args[2]), 10, 64)
	if perr != nil {
		c.w.WriteError("ERR value is not an integer or out of range")
		return 0, false, true
	}
	key := args[1]

	// Type pre-check: INCRBY on a non-counter value is a client error,
	// not a reset. (A concurrent SET can still race this check; the ops'
	// reset semantics keep that race well-defined.)
	st, err, rok := c.readValue(sess, key)
	if !rok {
		return 0, false, false
	}
	if st == faster.WouldBlock {
		c.async = asyncCmd{kind: 'I', key: key, delta: delta, step: 0}
		return 0, false, true
	}
	if st == faster.OK {
		if _, isCtr := faster.VarLenCounter(c.out); !isCtr {
			c.w.WriteError("ERR value is not an integer or out of range")
			return 0, false, true
		}
	} else if st == faster.Err {
		c.writeStoreErr(err)
		return 0, false, true
	}

	// The 9th input byte is VarLenOps's overflow status channel: the
	// updater writes 1 there instead of wrapping the counter. On the
	// pending path the updater ran against the store's copy of the input,
	// so the verdict comes back in Result.Input.
	var input [9]byte
	binary.LittleEndian.PutUint64(input[:8], uint64(delta))
	token := &opToken{}
	st, err = sess.RMW(key, input[:], token)
	overflowed := input[8] != 0
	if st == faster.WouldBlock {
		c.async = asyncCmd{kind: 'I', key: key, delta: delta, step: 1}
		return 0, false, true
	}
	if st == faster.Pending {
		r, drok := c.drainPending(sess, token)
		if !drok {
			return 0, false, false
		}
		st, err = r.Status, r.Err
		overflowed = len(r.Input) >= 9 && r.Input[8] != 0
	}
	if st != faster.OK {
		c.writeStoreErr(err)
		return 0, false, true
	}
	if overflowed {
		// A client asking for an impossible increment is not a store
		// fault: reply like Redis does and leave the counter (and the
		// health ladder) untouched.
		c.w.WriteError("ERR increment or decrement would overflow")
		return 0, false, true
	}

	// Report the updated counter. Under concurrent INCRBY of the same
	// key the read may observe later increments — the reply is a recent
	// value, not a linearisation point (documented deviation).
	st, err, rok = c.readValue(sess, key)
	if !rok {
		return 0, false, false
	}
	if st == faster.WouldBlock {
		c.async = asyncCmd{kind: 'I', key: key, delta: delta, step: 2}
		return 0, false, true
	}
	if st != faster.OK {
		c.writeStoreErr(fmt.Errorf("counter vanished: %v %v", st, err))
		return 0, false, true
	}
	n, isCtr := faster.VarLenCounter(c.out)
	if !isCtr {
		c.w.WriteError("ERR value is not an integer or out of range")
		return 0, false, true
	}
	return n, true, true
}

// ---------------------------------------------------------------------------
// Out-of-band miss completion (the stall-free slow path)
// ---------------------------------------------------------------------------

// runAsync finishes a command whose storage miss was re-routed through
// the store's io-worker pool. It runs on the connection goroutine with
// no pooled session and no admission token held: the only thing waiting
// is this connection's reply slot, which RESP's in-order protocol
// requires anyway. Every outcome — including deadline and queue-full
// sheds — produces an explicit reply.
func (c *connState) runAsync(a *asyncCmd) {
	s := c.s
	start := time.Now()
	deadline := start.Add(s.cfg.OpTimeout)
	defer func() { s.mx.cmdLatency.Observe(time.Since(start)) }()
	switch a.kind {
	case 'G':
		c.asyncGet(a, deadline)
	default: // 'I'
		c.asyncIncrBy(a, deadline)
	}
}

// submitWait routes one operation through the io-worker pool and blocks
// this connection (only) until its out-of-band completion. The pool
// guarantees delivery by the deadline even when the device never
// answers; the generous extra grace below is a defensive backstop, and
// tripping it abandons the channel so a late delivery cannot leak into
// a later command's wait.
func (c *connState) submitWait(isRMW bool, key, input []byte, outLen int, deadline time.Time) (faster.Result, error) {
	s := c.s
	if c.ioch == nil {
		c.ioch = make(chan faster.Result, 1)
	}
	ch := c.ioch
	done := func(r faster.Result) { ch <- r }
	var err error
	if isRMW {
		err = s.store.SubmitRMW(key, input, deadline, nil, done)
	} else {
		err = s.store.SubmitRead(key, input, outLen, deadline, nil, done)
	}
	if err != nil {
		return faster.Result{}, err
	}
	s.mx.ioAsync.Inc()
	t := time.NewTimer(time.Until(deadline) + 2*time.Second)
	defer t.Stop()
	select {
	case r := <-ch:
		return r, nil
	case <-t.C:
		c.ioch = nil
		return faster.Result{}, faster.ErrOpDeadline
	}
}

// asyncGet completes a GET whose record lives below the in-memory
// region. The output buffer is pool-allocated (ownership transfers with
// the result), sized like the synchronous read buffer so any value the
// server accepts decodes.
func (c *connState) asyncGet(a *asyncCmd, deadline time.Time) {
	r, err := c.submitWait(false, a.key, nil, len(c.out), deadline)
	if err != nil {
		c.writeStoreErr(err)
		return
	}
	switch r.Status {
	case faster.OK:
		payload, ok := faster.VarLenDecode(r.Output)
		if !ok {
			c.w.WriteError("ERR stored value exceeds server read buffer")
			return
		}
		c.w.WriteBulk(payload)
	case faster.NotFound:
		c.w.WriteNil()
	default:
		c.writeStoreErr(r.Err)
	}
}

// asyncIncrBy resumes an INCRBY from the step that missed, driving the
// remaining pre-read / RMW / post-read steps through the pool. All
// steps share one command deadline. Semantics match incrByCore; the
// overflow verdict rides back in Result.Input's 9th byte.
func (c *connState) asyncIncrBy(a *asyncCmd, deadline time.Time) {
	if a.step <= 0 {
		r, err := c.submitWait(false, a.key, nil, len(c.out), deadline)
		if err != nil {
			c.writeStoreErr(err)
			return
		}
		switch r.Status {
		case faster.OK:
			if _, isCtr := faster.VarLenCounter(r.Output); !isCtr {
				c.w.WriteError("ERR value is not an integer or out of range")
				return
			}
		case faster.NotFound:
		default:
			c.writeStoreErr(r.Err)
			return
		}
	}
	if a.step <= 1 {
		var input [9]byte
		binary.LittleEndian.PutUint64(input[:8], uint64(a.delta))
		r, err := c.submitWait(true, a.key, input[:], 0, deadline)
		if err != nil {
			c.writeStoreErr(err)
			return
		}
		if r.Status != faster.OK {
			c.writeStoreErr(r.Err)
			return
		}
		if len(r.Input) >= 9 && r.Input[8] != 0 {
			c.w.WriteError("ERR increment or decrement would overflow")
			return
		}
	}
	r, err := c.submitWait(false, a.key, nil, len(c.out), deadline)
	if err != nil {
		c.writeStoreErr(err)
		return
	}
	if r.Status != faster.OK {
		c.writeStoreErr(fmt.Errorf("counter vanished: %v %v", r.Status, r.Err))
		return
	}
	n, isCtr := faster.VarLenCounter(r.Output)
	if !isCtr {
		c.w.WriteError("ERR value is not an integer or out of range")
		return
	}
	c.w.WriteInt(n)
}

// doCompact runs a log compaction over every shard's stable region and
// replies with the total log bytes reclaimed. The command runs on the
// connection goroutine without a pooled session (each shard's Compact
// drives its own); concurrent COMPACTs serialize inside the shards.
func (c *connState) doCompact(args [][]byte) bool {
	s := c.s
	if len(args) != 1 {
		c.w.WriteError("ERR wrong number of arguments for 'compact'")
		return true
	}
	switch s.store.Health() {
	case faster.Failed:
		s.mx.failedRejects.Inc()
		c.w.WriteError("FAILED store failed (device lost)")
		return !s.allShardsFailed()
	case faster.ReadOnly:
		s.mx.readonlyRejects.Inc()
		c.w.WriteError("READONLY store is read-only (write path lost)")
		return true
	}
	s.mx.compactRuns.Inc()
	stats, err := s.store.CompactAll()
	if err != nil {
		c.writeStoreErr(err)
		return true
	}
	c.w.WriteInt(int64(stats.ReclaimedBytes))
	return true
}

// doMemory reports the log's space accounting as a flat array of
// name/value bulk-string pairs (MEMORY or MEMORY STATS). A single-shard
// server reports the flat store's exact accounting; a sharded one sums
// the byte and event counters across shards (per-shard addresses do not
// aggregate) and adds a "shards" pair.
func (c *connState) doMemory(args [][]byte) bool {
	if len(args) > 2 || (len(args) == 2 && commandName(args[1]) != "STATS") {
		c.w.WriteError("ERR unknown MEMORY subcommand")
		return true
	}
	if n := c.s.store.NumShards(); n > 1 {
		return c.memoryPairsSharded(n)
	}
	store := c.s.store.Shard(0)
	l := store.Log()
	m := store.Metrics()
	pairs := [][2]string{
		{"begin_address", strconv.FormatUint(l.BeginAddress(), 10)},
		{"head_address", strconv.FormatUint(l.HeadAddress(), 10)},
		{"safe_read_only_address", strconv.FormatUint(l.SafeReadOnlyAddress(), 10)},
		{"tail_address", strconv.FormatUint(l.TailAddress(), 10)},
		{"log_bytes", strconv.FormatUint(l.TailAddress()-l.BeginAddress(), 10)},
		{"stable_bytes", strconv.FormatUint(m.Log.StableBytes, 10)},
		{"mutable_bytes", strconv.FormatUint(m.Log.MutableBytes, 10)},
		{"compactions", strconv.FormatUint(m.Compactions, 10)},
		{"compacted_bytes", strconv.FormatUint(m.CompactedBytes, 10)},
		{"reclaimed_bytes", strconv.FormatUint(m.ReclaimedBytes, 10)},
		{"truncated_until", strconv.FormatUint(m.Log.TruncatedUntil, 10)},
		{"truncated_bytes", strconv.FormatUint(m.Log.TruncatedBytes, 10)},
	}
	if stored, ok := store.DeviceStoredBytes(); ok {
		pairs = append(pairs, [2]string{"device_stored_bytes", strconv.FormatUint(stored, 10)})
	}
	pairs = append(pairs,
		[2]string{"read_cache_bytes", strconv.FormatInt(m.ReadCache.Bytes, 10)},
		[2]string{"read_cache_hits", strconv.FormatUint(m.ReadCache.Hits, 10)},
		[2]string{"read_cache_misses", strconv.FormatUint(m.ReadCache.Misses, 10)},
		[2]string{"read_cache_fills", strconv.FormatUint(m.ReadCache.Fills, 10)},
		[2]string{"read_cache_evictions", strconv.FormatUint(m.ReadCache.Evictions, 10)},
		[2]string{"read_cache_invalidations", strconv.FormatUint(m.ReadCache.Invalidations, 10)},
		[2]string{"coalesced_reads", strconv.FormatUint(m.IOCoalescedReads, 10)},
	)
	c.w.WriteArrayHeader(2 * len(pairs))
	for _, p := range pairs {
		c.w.WriteBulk([]byte(p[0]))
		c.w.WriteBulk([]byte(p[1]))
	}
	return true
}

// memoryPairsSharded renders the ensemble's aggregated accounting.
func (c *connState) memoryPairsSharded(n int) bool {
	var logBytes, stable, mutable, compactions, compacted, reclaimed, truncated, stored uint64
	var rcHits, rcMisses, rcFills, rcEvict, rcInval, coalesced uint64
	var rcBytes int64
	haveStored := false
	for i := 0; i < n; i++ {
		s := c.s.store.Shard(i)
		l := s.Log()
		m := s.Metrics()
		logBytes += l.TailAddress() - l.BeginAddress()
		stable += m.Log.StableBytes
		mutable += m.Log.MutableBytes
		compactions += m.Compactions
		compacted += m.CompactedBytes
		reclaimed += m.ReclaimedBytes
		truncated += m.Log.TruncatedBytes
		rcBytes += m.ReadCache.Bytes
		rcHits += m.ReadCache.Hits
		rcMisses += m.ReadCache.Misses
		rcFills += m.ReadCache.Fills
		rcEvict += m.ReadCache.Evictions
		rcInval += m.ReadCache.Invalidations
		coalesced += m.IOCoalescedReads
		if db, ok := s.DeviceStoredBytes(); ok {
			stored += db
			haveStored = true
		}
	}
	pairs := [][2]string{
		{"shards", strconv.Itoa(n)},
		{"log_bytes", strconv.FormatUint(logBytes, 10)},
		{"stable_bytes", strconv.FormatUint(stable, 10)},
		{"mutable_bytes", strconv.FormatUint(mutable, 10)},
		{"compactions", strconv.FormatUint(compactions, 10)},
		{"compacted_bytes", strconv.FormatUint(compacted, 10)},
		{"reclaimed_bytes", strconv.FormatUint(reclaimed, 10)},
		{"truncated_bytes", strconv.FormatUint(truncated, 10)},
	}
	if haveStored {
		pairs = append(pairs, [2]string{"device_stored_bytes", strconv.FormatUint(stored, 10)})
	}
	pairs = append(pairs,
		[2]string{"read_cache_bytes", strconv.FormatInt(rcBytes, 10)},
		[2]string{"read_cache_hits", strconv.FormatUint(rcHits, 10)},
		[2]string{"read_cache_misses", strconv.FormatUint(rcMisses, 10)},
		[2]string{"read_cache_fills", strconv.FormatUint(rcFills, 10)},
		[2]string{"read_cache_evictions", strconv.FormatUint(rcEvict, 10)},
		[2]string{"read_cache_invalidations", strconv.FormatUint(rcInval, 10)},
		[2]string{"coalesced_reads", strconv.FormatUint(coalesced, 10)},
	)
	c.w.WriteArrayHeader(2 * len(pairs))
	for _, p := range pairs {
		c.w.WriteBulk([]byte(p[0]))
		c.w.WriteBulk([]byte(p[1]))
	}
	return true
}

// ---------------------------------------------------------------------------
// Multi-key commands (MGET/MSET): explicit cluster windows
// ---------------------------------------------------------------------------

// runMulti executes c.bops as one admitted window on a pooled session:
// the session facade splits it into concurrent per-shard sub-batches
// and rejoins the statuses in slot order. Cold read misses resolve
// through the shards' io-worker pools after the session and admission
// token are back in their pools. ok=false means the run was shed (an
// error reply has been written); closeConn reports that the connection
// must close.
func (c *connState) runMulti() (ok, closeConn bool) {
	s := c.s
	select {
	case s.inflight <- struct{}{}:
	default:
		s.mx.overloadSheds.Inc()
		c.w.WriteError("OVERLOADED too many requests in flight")
		return false, false
	}
	s.mx.inflightDepth.Inc()
	sess, shed, down := s.acquireSession()
	if down || shed {
		<-s.inflight
		s.mx.inflightDepth.Dec()
		if down {
			c.w.WriteError("ERR server shutting down")
			return false, true
		}
		c.w.WriteError("OVERLOADED no session available")
		return false, false
	}
	sess.Unpark()
	released := false
	release := func(healthy bool) {
		if released {
			return
		}
		released = true
		if healthy {
			sess.Park()
			s.sessions <- sess
		} else {
			s.retireSession(sess)
		}
		<-s.inflight
		s.mx.inflightDepth.Dec()
	}
	defer func() { release(false) }()

	start := time.Now()
	healthy := true
	if err := sess.ExecBatch(c.bops); err != nil {
		for i := range c.bops {
			c.bops[i].Status, c.bops[i].Err = faster.Err, err
		}
		release(true)
		s.mx.cmdLatency.Observe(time.Since(start))
		return true, false
	}
	pending := 0
	for i := range c.bops {
		if c.bops[i].Status == faster.Pending {
			pending++
		}
	}
	if pending > 0 {
		results, derr := sess.CompletePendingTimeout(s.cfg.OpTimeout)
		if derr != nil {
			s.mx.pendingTimeouts.Inc()
			healthy = false // unresolved slots render -TIMEOUT in the caller
		} else {
			for _, r := range results {
				if k, rok := r.Ctx.(int); rok && k >= 0 && k < len(c.bops) {
					c.bops[k].Status, c.bops[k].Err = r.Status, r.Err
				}
			}
		}
	}
	// Oversized values: re-read through an exact-size buffer, mirroring
	// the pipelined batch path.
	for i := range c.bops {
		op := &c.bops[i]
		if !healthy || op.Kind != faster.BatchRead || op.Status != faster.OK {
			continue
		}
		if _, dok := faster.VarLenDecode(op.Output); !dok {
			big := make([]byte, 8+s.cfg.MaxValueBytes)
			st, rerr, rok := c.readInto(sess, op.Key, big)
			if !rok {
				healthy = false
				op.Status = faster.Pending
				continue
			}
			op.Status, op.Err, op.Output = st, rerr, big
		}
	}
	release(healthy)
	s.mx.cmdLatency.Observe(time.Since(start))
	c.resolveBatchAsync(healthy)
	return true, false
}

// doMGet reads every key as one window. The facade fans the reads out
// per shard concurrently; keys on read-only shards keep serving. RESP2
// arrays carry no per-element errors, so the first hard failure fails
// the whole command.
func (c *connState) doMGet(args [][]byte) bool {
	s := c.s
	if len(args) < 2 {
		c.w.WriteError("ERR wrong number of arguments for 'mget'")
		return true
	}
	keys := args[1:]
	if len(keys) > maxWindowCmds {
		c.w.WriteError(fmt.Sprintf("ERR MGET takes at most %d keys", maxWindowCmds))
		return true
	}
	worst := faster.Healthy
	for _, k := range keys {
		if len(k) == 0 {
			c.w.WriteError("ERR empty key")
			return true
		}
		if h := s.store.HealthFor(k); h > worst {
			worst = h
		}
	}
	if worst == faster.Failed {
		s.mx.failedRejects.Inc()
		c.w.WriteError("FAILED store failed (device lost)")
		return !s.allShardsFailed()
	}
	if cap(c.bops) < len(keys) {
		c.bops = make([]faster.BatchOp, 0, maxWindowCmds)
	}
	c.bops = c.bops[:0]
	for i, k := range keys {
		c.bops = append(c.bops, faster.BatchOp{
			Kind: faster.BatchRead, Key: k, Output: c.slotOut(i), Ctx: i,
		})
	}
	ok, closeConn := c.runMulti()
	if !ok {
		return !closeConn
	}
	for i := range c.bops {
		switch c.bops[i].Status {
		case faster.OK, faster.NotFound:
		case faster.Pending, faster.WouldBlock:
			s.mx.pendingTimeouts.Inc()
			c.w.WriteError("TIMEOUT operation did not complete in time")
			return true
		default:
			c.writeStoreErr(c.bops[i].Err)
			return true
		}
	}
	c.w.WriteArrayHeader(len(c.bops))
	for i := range c.bops {
		if c.bops[i].Status == faster.NotFound {
			c.w.WriteNil()
			continue
		}
		payload, dok := faster.VarLenDecode(c.bops[i].Output)
		if !dok {
			payload = nil // defensive: the oversized re-read resolved these
		}
		c.w.WriteBulk(payload)
	}
	return true
}

// doMSet writes every key/value pair as one window, fanned out per
// shard. All-or-error reply: +OK only when every pair applied; a
// failure on any shard reports that shard's error (earlier pairs may
// have applied — MSET is not transactional, matching Redis).
func (c *connState) doMSet(args [][]byte) bool {
	s := c.s
	if len(args) < 3 || len(args)%2 != 1 {
		c.w.WriteError("ERR wrong number of arguments for 'mset'")
		return true
	}
	pairs := (len(args) - 1) / 2
	if pairs > maxWindowCmds {
		c.w.WriteError(fmt.Sprintf("ERR MSET takes at most %d pairs", maxWindowCmds))
		return true
	}
	worst := faster.Healthy
	need := 0
	for i := 0; i < pairs; i++ {
		k, v := args[1+2*i], args[2+2*i]
		if len(k) == 0 {
			c.w.WriteError("ERR empty key")
			return true
		}
		if len(v) > s.cfg.MaxValueBytes {
			c.w.WriteError(fmt.Sprintf("ERR value exceeds %d bytes", s.cfg.MaxValueBytes))
			return true
		}
		need += 8 + len(v)
		if h := s.store.HealthFor(k); h > worst {
			worst = h
		}
	}
	switch worst {
	case faster.Failed:
		s.mx.failedRejects.Inc()
		c.w.WriteError("FAILED store failed (device lost)")
		return !s.allShardsFailed()
	case faster.ReadOnly:
		s.mx.readonlyRejects.Inc()
		c.w.WriteError("READONLY store is read-only (write path lost)")
		return true
	}
	if cap(c.val) < need {
		c.val = make([]byte, 0, need)
	}
	val := c.val[:0]
	if cap(c.bops) < pairs {
		c.bops = make([]faster.BatchOp, 0, maxWindowCmds)
	}
	c.bops = c.bops[:0]
	for i := 0; i < pairs; i++ {
		frame := faster.VarLenAppend(val, args[2+2*i])
		c.bops = append(c.bops, faster.BatchOp{
			Kind: faster.BatchUpsert, Key: args[1+2*i], Value: frame[len(val):], Ctx: i,
		})
		val = frame
	}
	ok, closeConn := c.runMulti()
	if !ok {
		return !closeConn
	}
	for i := range c.bops {
		if st := c.bops[i].Status; st != faster.OK {
			if st == faster.Pending || st == faster.WouldBlock {
				s.mx.pendingTimeouts.Inc()
				c.w.WriteError("TIMEOUT operation did not complete in time")
			} else {
				c.writeStoreErr(c.bops[i].Err)
			}
			return true
		}
	}
	c.w.WriteSimple("OK")
	return true
}

// ---------------------------------------------------------------------------
// Batched execution (pipelined GET/SET windows)
// ---------------------------------------------------------------------------

// dataBatch executes a run of well-formed GET/SET commands as one store
// batch: the health gate, admission token and pooled session are paid
// once for the run, the operations go through Session.ExecBatch, and the
// replies leave in a single vectored write. Per-command semantics match
// the single-op path; only the bookkeeping is amortized. Returns false
// when the connection must close.
func (c *connState) dataBatch(cmds []resp.Command) bool {
	s := c.s

	// Health ladder, once per run, on the worst shard. Any shard worse
	// than Degraded degrades the run to the single-op path, whose
	// per-key gates isolate the sick shard: keys on healthy shards keep
	// full service, SETs on a read-only shard get -READONLY, keys on a
	// failed shard get -FAILED. Only a fully failed ensemble sheds the
	// connection. Batching is a fast-path concern, not a degraded-mode
	// one.
	switch s.store.Health() {
	case faster.Failed, faster.ReadOnly:
		if s.allShardsFailed() {
			s.mx.commands.Inc()
			s.mx.failedRejects.Inc()
			c.w.WriteError("FAILED store failed (device lost)")
			return false
		}
		for i := range cmds {
			if !c.dispatch(cmds[i].Args) {
				return false
			}
		}
		return true
	}
	s.mx.commands.Add(uint64(len(cmds)))

	// Admission: one token per run — a batch is one unit of store work.
	select {
	case s.inflight <- struct{}{}:
	default:
		s.mx.overloadSheds.Inc()
		for range cmds {
			c.w.WriteError("OVERLOADED too many requests in flight")
		}
		return true
	}
	s.mx.inflightDepth.Inc()

	sess, shed, down := s.acquireSession()
	if down || shed {
		<-s.inflight
		s.mx.inflightDepth.Dec()
		if down {
			c.w.WriteError("ERR server shutting down")
			return false
		}
		for range cmds {
			c.w.WriteError("OVERLOADED no session available")
		}
		return true
	}
	sess.Unpark()

	// The session and admission token go back to their pools as soon as
	// the resident work is done — before any cold WouldBlock slot is
	// resolved through the io-worker pool — so a batch of cold misses
	// cannot hold capacity that hot traffic needs. The deferred release
	// is only the panic backstop.
	released := false
	release := func(healthy bool) {
		if released {
			return
		}
		released = true
		if healthy {
			sess.Park()
			s.sessions <- sess
		} else {
			s.retireSession(sess)
		}
		<-s.inflight
		s.mx.inflightDepth.Dec()
	}
	defer func() { release(false) }()

	start := time.Now()
	healthy := c.execBatch(sess, cmds)
	release(healthy)
	s.mx.cmdLatency.Observe(time.Since(start))
	c.resolveBatchAsync(healthy)
	return c.flushBatchReplies(cmds)
}

// resolveBatchAsync completes the run's WouldBlock GET slots through the
// io-worker pool, submitting them all before waiting so independent
// misses overlap on the device. Submit failures (queue full, shutdown)
// land in the slot's Err and render as explicit sheds.
func (c *connState) resolveBatchAsync(healthy bool) {
	s := c.s
	if !healthy {
		return // unresolved slots render -TIMEOUT below
	}
	outstanding := 0
	for i := range c.bops {
		if c.bops[i].Kind == faster.BatchRead && c.bops[i].Status == faster.WouldBlock {
			outstanding++
		}
	}
	if outstanding == 0 {
		return
	}
	deadline := time.Now().Add(s.cfg.OpTimeout)
	ch := make(chan faster.Result, outstanding)
	submitted := 0
	for i := range c.bops {
		op := &c.bops[i]
		if op.Kind != faster.BatchRead || op.Status != faster.WouldBlock {
			continue
		}
		err := s.store.SubmitRead(op.Key, nil, 8+s.cfg.MaxValueBytes, deadline, i,
			func(r faster.Result) { ch <- r })
		if err != nil {
			op.Status, op.Err = faster.Err, err
			continue
		}
		s.mx.ioAsync.Inc()
		submitted++
	}
	t := time.NewTimer(time.Until(deadline) + 2*time.Second)
	defer t.Stop()
	for k := 0; k < submitted; k++ {
		select {
		case r := <-ch:
			if idx, ok := r.Ctx.(int); ok && idx >= 0 && idx < len(c.bops) {
				c.bops[idx].Status, c.bops[idx].Err, c.bops[idx].Output = r.Status, r.Err, r.Output
			}
		case <-t.C:
			// Defensive backstop only: pool delivery is deadline-bounded.
			for i := range c.bops {
				if c.bops[i].Kind == faster.BatchRead && c.bops[i].Status == faster.WouldBlock {
					c.bops[i].Status, c.bops[i].Err = faster.Err, faster.ErrOpDeadline
				}
			}
			return
		}
	}
}

// execBatch builds the BatchOps for a run, executes them, drains any
// pending completions and resolves oversized GETs. Outcomes land in
// c.bops[i].Status/Err with outputs filled; the return value is the
// session's health (false retires it).
func (c *connState) execBatch(sess *faster.ShardedSession, cmds []resp.Command) bool {
	s := c.s
	if cap(c.bops) < len(cmds) {
		c.bops = make([]faster.BatchOp, 0, maxWindowCmds)
	}
	c.bops = c.bops[:0]
	c.smeta = c.smeta[:0]
	c.slotop = c.slotop[:0]

	// The SET arena is sized up front so appends cannot regrow it and
	// invalidate the value slices already handed to earlier ops.
	need := 0
	for i := range cmds {
		if cmds[i].Is("SET") {
			need += 8 + len(cmds[i].Args[2])
		}
	}
	if cap(c.val) < need {
		c.val = make([]byte, 0, need)
	}
	val := c.val[:0]

	// Serial admission happens in command order inside per-shard session
	// windows, which stay open across the store batch so a concurrent
	// checkpoint cannot cut between an op's record and its commit. The
	// windows of every shard a stamped slot routes to are opened up front
	// in ascending shard order — the same global order the sharded
	// checkpoint barrier takes its write locks in — so a multi-window
	// batch can never deadlock against a concurrent checkpoint. The
	// stream-wide gap check lives here on the connection (sparse shard
	// tables admit any forward serial); expect tracks admissions within
	// the window, c.nextSerial advances only on commit.
	windowOpen := false
	nShards := 0
	if c.token != nil {
		nShards = s.store.NumShards()
		if cap(c.winOpen) < nShards {
			c.winOpen = make([]bool, nShards)
		}
		c.winOpen = c.winOpen[:nShards]
		for i := range c.winOpen {
			c.winOpen[i] = false
		}
		c.slotTok = c.slotTok[:0]
		for i := range cmds {
			var tok *faster.SessionToken
			if cmds[i].Is("SET") && len(cmds[i].Args) == 5 {
				if serial, _, _ := splitSerial(cmds[i].Args); serial > 0 {
					sh := s.store.ShardFor(cmds[i].Args[1])
					c.winOpen[sh] = true
					tok = c.token.Tok(sh)
				}
			}
			c.slotTok = append(c.slotTok, tok)
		}
		for sh := 0; sh < nShards; sh++ {
			if c.winOpen[sh] {
				c.token.Tok(sh).WindowEnter()
				windowOpen = true
			}
		}
	}
	closeWindows := func() {
		for sh := nShards - 1; sh >= 0; sh-- {
			if c.winOpen[sh] {
				c.token.Tok(sh).WindowExit()
			}
		}
	}
	expect := c.nextSerial
	for i := range cmds {
		cmd := &cmds[i]
		var meta slotMeta
		if cmd.Is("SET") && len(cmd.Args) == 5 {
			meta.serial, _, _ = splitSerial(cmd.Args)
		}
		if meta.serial > 0 {
			meta.tok = c.slotTok[i]
			if meta.serial > expect {
				// Connection-level gap: resolved before the shard token so
				// no admission needs rolling back.
				meta.verdict = faster.SerialGap
				c.smeta = append(c.smeta, meta)
				c.slotop = append(c.slotop, -1)
				continue
			}
			meta.verdict, meta.saved = meta.tok.Check(meta.serial)
			if meta.verdict != faster.SerialApply {
				// Resolved without touching the store.
				c.smeta = append(c.smeta, meta)
				c.slotop = append(c.slotop, -1)
				continue
			}
			expect = meta.serial + 1
		}
		c.smeta = append(c.smeta, meta)
		c.slotop = append(c.slotop, len(c.bops))
		if cmd.Is("GET") {
			c.bops = append(c.bops, faster.BatchOp{
				Kind: faster.BatchRead, Key: cmd.Args[1],
				Output: c.slotOut(i), Ctx: len(c.bops),
			})
			continue
		}
		frame := faster.VarLenAppend(val, cmd.Args[2])
		c.bops = append(c.bops, faster.BatchOp{
			Kind: faster.BatchUpsert, Key: cmd.Args[1],
			Value: frame[len(val):], Ctx: len(c.bops),
		})
		val = frame
	}

	if err := sess.ExecBatch(c.bops); err != nil {
		for i := range c.bops {
			c.bops[i].Status, c.bops[i].Err = faster.Err, err
		}
		if windowOpen {
			closeWindows()
		}
		return true
	}

	// Drain pending completions (cold GETs) once for the whole run.
	healthy := true
	pending := 0
	for i := range c.bops {
		if c.bops[i].Status == faster.Pending {
			pending++
		}
	}
	if pending > 0 {
		results, err := sess.CompletePendingTimeout(s.cfg.OpTimeout)
		if err != nil {
			s.mx.pendingTimeouts.Inc()
			healthy = false // unresolved slots reply -TIMEOUT below
		} else {
			for _, r := range results {
				if k, ok := r.Ctx.(int); ok && k >= 0 && k < len(c.bops) {
					c.bops[k].Status, c.bops[k].Err = r.Status, r.Err
				}
			}
		}
	}

	// Oversized values: the pooled slot buffer was too small, so re-read
	// through an exact-size buffer (rare path; the allocation is the
	// price of not sizing every slot for the maximum value).
	for i := range c.bops {
		op := &c.bops[i]
		if !healthy || op.Kind != faster.BatchRead || op.Status != faster.OK {
			continue
		}
		if _, ok := faster.VarLenDecode(op.Output); !ok {
			big := make([]byte, 8+s.cfg.MaxValueBytes)
			st, err, ok := c.readInto(sess, op.Key, big)
			if !ok {
				healthy = false
				op.Status = faster.Pending // renders as -TIMEOUT
				continue
			}
			op.Status, op.Err, op.Output = st, err, big
		}
	}

	// Commit the run's serial prefix in order. The first failed stamped
	// op stops the commits: later serials cannot ack (Commit is strictly
	// sequential) and reply -RETRY instead, so the client's
	// resend-from-frontier rule re-applies exactly the uncommitted
	// suffix. Re-application is safe here because only idempotent SETs
	// ride the batch path.
	if windowOpen {
		committing := true
		scratch := c.ackBuf[:0]
		for i := range c.smeta {
			m := &c.smeta[i]
			if m.serial == 0 || m.verdict != faster.SerialApply {
				continue
			}
			if !committing || !healthy || c.bops[c.slotop[i]].Status != faster.OK {
				committing = false
				continue
			}
			scratch = scratch[:0]
			scratch = append(scratch, "ACK "...)
			scratch = strconv.AppendUint(scratch, m.serial, 10)
			scratch = append(scratch, " OK"...)
			m.tok.Commit(m.serial, scratch)
			m.committed = true
			c.nextSerial = m.serial + 1
		}
		c.ackBuf = scratch
		// Uncommitted admissions roll back as each window closes.
		closeWindows()
	}
	return healthy
}

// slotOut returns slot i's pooled GET output buffer.
func (c *connState) slotOut(i int) []byte {
	for len(c.outs) <= i {
		c.outs = append(c.outs, nil)
	}
	if c.outs[i] == nil {
		c.outs[i] = make([]byte, slotOutBytes)
	}
	return c.outs[i]
}

// flushBatchReplies renders the run's replies into the pooled reply
// scratch — large GET payloads ride as zero-copy elements — and sends
// everything with one vectored write. The resp.Writer is flushed first
// so earlier single-command replies keep their place in the stream.
func (c *connState) flushBatchReplies(cmds []resp.Command) bool {
	c.reply = c.reply[:0]
	c.segs = c.segs[:0]
	for i := range cmds {
		m := &c.smeta[i]
		if m.serial > 0 {
			c.appendSerialReply(m, c.slotop[i])
			continue
		}
		op := &c.bops[c.slotop[i]]
		if op.Kind == faster.BatchUpsert {
			if op.Status == faster.OK {
				c.reply = append(c.reply, "+OK\r\n"...)
			} else {
				c.appendErrReply(op.Err)
			}
			continue
		}
		switch op.Status {
		case faster.OK:
			payload, ok := faster.VarLenDecode(op.Output)
			if !ok {
				c.reply = append(c.reply, "-ERR stored value exceeds server read buffer\r\n"...)
				continue
			}
			c.reply = append(c.reply, '$')
			c.reply = strconv.AppendInt(c.reply, int64(len(payload)), 10)
			c.reply = append(c.reply, '\r', '\n')
			if len(payload) <= inlineReplyMax {
				c.reply = append(c.reply, payload...)
			} else {
				c.segs = append(c.segs, replySeg{end: len(c.reply), payload: payload})
			}
			c.reply = append(c.reply, '\r', '\n')
		case faster.NotFound:
			c.reply = append(c.reply, "$-1\r\n"...)
		case faster.Pending, faster.WouldBlock:
			c.s.mx.pendingTimeouts.Inc()
			c.reply = append(c.reply, "-TIMEOUT operation did not complete in time\r\n"...)
		default:
			c.appendErrReply(op.Err)
		}
	}
	c.segs = append(c.segs, replySeg{end: len(c.reply)})

	c.conn.SetWriteDeadline(time.Now().Add(c.s.cfg.WriteTimeout))
	if err := c.w.Flush(); err != nil {
		if isTimeout(err) {
			c.s.mx.deadlineEvictions.Inc()
		}
		return false
	}
	c.vecs = c.vecs[:0]
	prev := 0
	for _, seg := range c.segs {
		if seg.end > prev {
			c.vecs = append(c.vecs, c.reply[prev:seg.end])
		}
		prev = seg.end
		if seg.payload != nil {
			c.vecs = append(c.vecs, seg.payload)
		}
	}
	if _, err := c.vecs.WriteTo(c.conn); err != nil {
		if isTimeout(err) {
			c.s.mx.deadlineEvictions.Inc()
		}
		return false
	}
	return true
}

// appendSerialReply renders a stamped batch slot's outcome into the
// reply scratch; j is the slot's BatchOp index (-1 when the serial
// verdict resolved the slot without executing).
func (c *connState) appendSerialReply(m *slotMeta, j int) {
	switch {
	case m.committed:
		c.reply = append(c.reply, "+ACK "...)
		c.reply = strconv.AppendUint(c.reply, m.serial, 10)
		c.reply = append(c.reply, " OK\r\n"...)
	case m.verdict == faster.SerialReplay:
		c.reply = append(c.reply, '+')
		c.reply = append(c.reply, m.saved...)
		c.reply = append(c.reply, '\r', '\n')
	case m.verdict == faster.SerialStale:
		c.reply = append(c.reply, "-STALE serial "...)
		c.reply = strconv.AppendUint(c.reply, m.serial, 10)
		c.reply = append(c.reply, " is at or below the committed frontier\r\n"...)
	case m.verdict == faster.SerialGap:
		c.reply = append(c.reply, "-ERR serial "...)
		c.reply = strconv.AppendUint(c.reply, m.serial, 10)
		c.reply = append(c.reply, " skips the next expected serial\r\n"...)
	case m.verdict == faster.SerialFenced:
		c.reply = append(c.reply, "-FENCED session was re-bound by a newer connection\r\n"...)
	default:
		// Admitted but rolled back: either this op failed or an earlier
		// serial in the window did (strict in-order commit).
		op := &c.bops[j]
		switch op.Status {
		case faster.OK:
			c.reply = append(c.reply, "-RETRY serial "...)
			c.reply = strconv.AppendUint(c.reply, m.serial, 10)
			c.reply = append(c.reply, " not committed; resend from the session frontier\r\n"...)
		case faster.Pending:
			c.s.mx.pendingTimeouts.Inc()
			c.reply = append(c.reply, "-TIMEOUT operation did not complete in time\r\n"...)
		default:
			c.appendErrReply(op.Err)
		}
	}
}

// appendErrReply renders a store error into the batched reply scratch,
// mirroring writeStoreErr.
func (c *connState) appendErrReply(err error) {
	switch {
	case errors.Is(err, faster.ErrOpDeadline):
		c.s.mx.ioShedTimeouts.Inc()
		c.reply = append(c.reply, "-TIMEOUT operation deadline expired\r\n"...)
	case errors.Is(err, faster.ErrIOQueueFull):
		c.s.mx.ioShedQueueFull.Inc()
		c.reply = append(c.reply, "-OVERLOADED io queue full\r\n"...)
	case errors.Is(err, faster.ErrStoreClosed):
		c.reply = append(c.reply, "-ERR server shutting down\r\n"...)
	case errors.Is(err, faster.ErrReadOnly):
		c.s.mx.readonlyRejects.Inc()
		c.reply = append(c.reply, "-READONLY store is read-only (write path lost)\r\n"...)
	case errors.Is(err, faster.ErrStoreFailed):
		c.s.mx.failedRejects.Inc()
		c.reply = append(c.reply, "-FAILED store failed (device lost)\r\n"...)
	case err != nil:
		c.reply = append(c.reply, "-ERR "...)
		for _, b := range []byte(err.Error()) {
			if b == '\r' || b == '\n' {
				b = ' '
			}
			c.reply = append(c.reply, b)
		}
		c.reply = append(c.reply, '\r', '\n')
	default:
		c.reply = append(c.reply, "-ERR unknown store error\r\n"...)
	}
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

// Close gracefully drains the server: stop accepting, let in-flight
// commands finish under the drain deadline, evict what remains, drain
// and close every pooled session, and (when configured) take a final
// checkpoint. Safe to call multiple times.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.drain() })
	return s.closeErr
}

func (s *Server) drain() error {
	start := time.Now()
	deadline := start.Add(s.cfg.DrainTimeout)
	s.draining.Store(true)
	close(s.done)
	s.ln.Close()

	var err error

	// Phase 1: let in-flight commands complete. New commands are still
	// parsed on open connections but data commands will shed once the
	// drain closes their conns; we give the ones already executing their
	// chance to finish and be acknowledged.
	for len(s.inflight) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(s.inflight) > 0 {
		err = ErrDrainTimeout
	}

	// Phase 2: evict remaining connections (idle readers unblock with an
	// error; slow writers hit their write deadline) and wait for every
	// handler and retirer goroutine.
	s.closeConns()
	s.wg.Wait()

	// Phase 3: drain the session pool. Every handler has exited, so all
	// live sessions are in the channel; each is completed under the
	// remaining deadline and closed.
	drained := 0
	for {
		select {
		case sess := <-s.sessions:
			sess.Unpark()
			left := time.Until(deadline)
			if left < 100*time.Millisecond {
				left = 100 * time.Millisecond
			}
			if _, derr := sess.CompletePendingTimeout(left); derr != nil {
				s.abandoned.Add(1)
				if err == nil {
					err = ErrDrainTimeout
				}
				continue // do not Close: it would block on the wedged op
			}
			sess.Close()
			drained++
		default:
			goto donePool
		}
	}
donePool:

	// Phase 4: optional final checkpoint — only when the write path is
	// alive and no abandoned session can pin the epoch.
	if s.cfg.CheckpointDir != "" && s.store.Health() <= faster.Degraded && s.abandoned.Load() == 0 {
		if _, cerr := s.store.Checkpoint(s.cfg.CheckpointDir); cerr != nil && err == nil {
			err = fmt.Errorf("server: drain checkpoint: %w", cerr)
		}
	}

	s.mx.drains.Inc()
	s.mx.drainNs.Set(time.Since(start).Nanoseconds())
	return err
}
