// Package server is the FASTER network front-end: a RESP2-speaking TCP
// server over a *faster.Store, designed around failure from day one.
//
// The ROADMAP's north star is a store "serving heavy traffic from
// millions of users"; what turns a storage engine into such a service is
// not the happy path but the overload and failure behaviour of the layer
// in front of it. Skewed workloads concentrate load on hot keys and hot
// connections (F2, Kanellis et al.), so shedding and bounded queueing
// are correctness concerns; unbounded per-request threading stalls the
// whole store (Lomet & Wang), so work is admitted through a bounded
// session pool in front of FASTER's epoch-slot sessions. Concretely:
//
//   - Connection cap: beyond Config.MaxConns, new connections receive
//     "-OVERLOADED max connections" and are closed — shed, not queued.
//   - Admission semaphore: at most Config.MaxInFlight commands execute
//     at once; excess requests are answered "-OVERLOADED" immediately
//     instead of queueing unboundedly.
//   - Bounded session pool: Config.Sessions FASTER sessions are created
//     up front and multiplexed across connections, so connection churn
//     can never exhaust the store's epoch-table slots.
//   - Deadlines: idle/read and write deadlines evict slow or wedged
//     clients instead of parking handler goroutines forever.
//   - Accept-loop backoff: transient accept errors retry under a bounded
//     internal/retry policy with the device-style error classification.
//   - Panic recovery: a panicking handler closes its connection and is
//     counted; the server keeps serving.
//   - Health ladder: with the store ReadOnly, writes fail fast with
//     "-READONLY" while reads keep serving; with the store Failed, data
//     commands are shed with "-FAILED" and the connection is closed.
//   - Graceful drain: Close (or SIGTERM in cmd/faster-server) stops
//     accepting, lets in-flight commands finish under a deadline, drains
//     every pooled session via CompletePendingTimeout, and optionally
//     takes a final checkpoint — provably leak-free (the chaos soak
//     asserts zero leaked goroutines under -race).
//
// Protocol: GET/SET/DEL return Redis-shaped replies; INCRBY maps onto
// FASTER's RMW with faster.VarLenOps counter semantics (the store must
// be opened with Ops: faster.VarLenOps{}); PING/ECHO/QUIT/COMMAND cover
// interop. Values are framed server-side with faster.VarLenEncode.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faster"
	"repro/internal/resp"
	"repro/internal/retry"
)

// Config tunes the front-end's robustness surface. The zero value of
// every field selects a sensible default.
type Config struct {
	// MaxConns caps concurrently served connections (default 256).
	// Excess connections are shed with -OVERLOADED at accept time.
	MaxConns int
	// MaxInFlight caps commands executing at once across all
	// connections (default 4*Sessions). Excess requests are shed with
	// -OVERLOADED, never queued unboundedly.
	MaxInFlight int
	// Sessions is the FASTER session-pool size (default 16). It must not
	// exceed the store's MaxSessions.
	Sessions int

	// IdleTimeout bounds the wait for the first byte of the next command
	// on a connection (default 5m); ReadTimeout bounds every subsequent
	// read once bytes have started flowing, so a client cannot stall
	// half-way through a command and pin a handler (default 10s);
	// WriteTimeout bounds flushing replies (default 10s). Deadline hits
	// evict the client.
	IdleTimeout  time.Duration
	ReadTimeout  time.Duration
	WriteTimeout time.Duration

	// AcquireTimeout bounds the wait for a pooled session (default
	// 100ms); on expiry the request is shed with -OVERLOADED.
	AcquireTimeout time.Duration
	// OpTimeout bounds CompletePendingTimeout for one command's
	// asynchronous I/O (default 5s).
	OpTimeout time.Duration
	// DrainTimeout bounds the graceful drain in Close (default 10s).
	DrainTimeout time.Duration

	// MaxValueBytes rejects oversized SET values (default 512 KiB).
	MaxValueBytes int

	// AcceptRetry bounds accept-loop backoff on transient errors; the
	// zero value selects a patient default (~1s cumulative).
	AcceptRetry retry.Policy

	// CheckpointDir, when set, makes the graceful drain finish with a
	// store checkpoint into this directory (skipped when the store's
	// write path is already gone).
	CheckpointDir string

	// EnablePprof mounts net/http/pprof profiling handlers under
	// /debug/pprof/ on the admin mux. The admin listener is expected to
	// be private; still, profiling is off unless asked for.
	EnablePprof bool
}

func (c *Config) setDefaults() {
	if c.MaxConns <= 0 {
		c.MaxConns = 256
	}
	if c.Sessions <= 0 {
		c.Sessions = 16
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * c.Sessions
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.AcquireTimeout <= 0 {
		c.AcquireTimeout = 100 * time.Millisecond
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxValueBytes <= 0 {
		c.MaxValueBytes = 512 << 10
	}
	if c.AcceptRetry == (retry.Policy{}) {
		c.AcceptRetry = retry.Policy{MaxAttempts: 8, BaseDelay: time.Millisecond,
			MaxDelay: 250 * time.Millisecond, Multiplier: 2, JitterFrac: 0.25}
	}
}

// ErrDrainTimeout reports that graceful drain hit its deadline and had
// to force-close connections or abandon session drains.
var ErrDrainTimeout = errors.New("server: graceful drain exceeded its deadline")

// Server is a running front-end.
type Server struct {
	store *faster.Store
	cfg   Config
	ln    net.Listener

	sessions chan *faster.Session
	inflight chan struct{}

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	wg        sync.WaitGroup
	done      chan struct{}
	draining  atomic.Bool
	closeOnce sync.Once
	closeErr  error

	abandoned atomic.Int64 // sessions whose pendings never drained

	mx serverMetrics
}

// ListenAndServe starts a front-end for store on addr ("127.0.0.1:0"
// picks a free port; see Addr).
func ListenAndServe(store *faster.Store, addr string, cfg Config) (*Server, error) {
	cfg.setDefaults()
	if cfg.Sessions > store.MaxSessions() {
		return nil, fmt.Errorf("server: %d sessions exceed the store's cap of %d",
			cfg.Sessions, store.MaxSessions())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		store:    store,
		cfg:      cfg,
		ln:       ln,
		sessions: make(chan *faster.Session, cfg.Sessions),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	for i := 0; i < cfg.Sessions; i++ {
		// Pooled sessions are parked while idle: they keep their
		// epoch-table slot but pin no epoch, so an idle pool never stalls
		// the store's flush/eviction machinery for active sessions.
		sess := store.StartSession()
		sess.Park()
		s.sessions <- sess
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Store exposes the store being served (admin handler, tests).
func (s *Server) Store() *faster.Store { return s.store }

// ---------------------------------------------------------------------------
// Accept loop
// ---------------------------------------------------------------------------

// classifyAcceptErr maps accept errors onto the retry taxonomy: a closed
// listener is permanent (shutdown); timeouts, EMFILE bursts and other
// transient conditions are retried under the bounded policy.
func classifyAcceptErr(err error) retry.Class {
	if errors.Is(err, net.ErrClosed) {
		return retry.Permanent
	}
	return retry.Transient
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	failures := 0
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
			}
			failures++
			s.mx.acceptRetries.Inc()
			if !s.cfg.AcceptRetry.Budget(classifyAcceptErr, err, failures) {
				return
			}
			select {
			case <-time.After(s.cfg.AcceptRetry.Delay(failures)):
			case <-s.done:
				return
			}
			continue
		}
		failures = 0

		if !s.trackConn(conn) {
			// Connection cap: shed with an explicit error, never queue.
			s.mx.connsRejected.Inc()
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			w := resp.NewWriter(conn)
			w.WriteError("OVERLOADED max connections")
			w.Flush()
			conn.Close()
			continue
		}
		s.mx.connsAccepted.Inc()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// trackConn registers conn, failing when the cap is reached or the
// server is draining.
func (s *Server) trackConn(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining.Load() || len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	s.conns[conn] = struct{}{}
	s.mx.connsActive.Inc()
	return true
}

func (s *Server) untrackConn(conn net.Conn) {
	s.connMu.Lock()
	if _, ok := s.conns[conn]; ok {
		delete(s.conns, conn)
		s.mx.connsActive.Dec()
	}
	s.connMu.Unlock()
}

func (s *Server) closeConns() {
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
}

// ---------------------------------------------------------------------------
// Connection handler
// ---------------------------------------------------------------------------

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrackConn(conn)
	defer conn.Close()
	// Panic recovery: one handler's bug (or a poisoned input) costs one
	// connection, not the process.
	defer func() {
		if r := recover(); r != nil {
			s.mx.panics.Inc()
		}
	}()

	c := &connState{
		s:    s,
		conn: conn,
		r: resp.NewReaderLimits(&slowConn{Conn: conn, per: s.cfg.ReadTimeout},
			resp.Limits{MaxBulk: s.cfg.MaxValueBytes + 1}),
		w:    resp.NewWriter(conn),
		out:  make([]byte, 8+s.cfg.MaxValueBytes),
		cmds: make([]resp.Command, maxWindowCmds),
	}
	closing := false
	for !closing {
		// The idle deadline bounds the wait for the command's first byte;
		// slowConn then bumps the deadline to the tighter ReadTimeout on
		// every delivering read, so a half-sent command cannot pin this
		// handler past ReadTimeout (slowloris defence).
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		if err := c.r.ReadCommandInto(&c.cmds[0]); err != nil {
			if isTimeout(err) {
				s.mx.deadlineEvictions.Inc()
			}
			return
		}
		// Extend the window while pipelined input is already buffered, so
		// a burst executes as batches instead of one command at a time.
		// The byte budget bounds the decoded arguments a window may pin.
		n, window := 1, c.cmds[0].Size()
		for n < maxWindowCmds && window < windowByteBudget && c.r.Buffered() > 0 {
			if err := c.r.ReadCommandInto(&c.cmds[n]); err != nil {
				// Framing is lost: serve what was decoded, then close.
				closing = true
				break
			}
			window += c.cmds[n].Size()
			n++
		}
		if !c.processWindow(c.cmds[:n]) {
			closing = true
		}
		// Batch replies across a pipelined burst: flush only when no
		// further input is already buffered.
		if closing || c.r.Buffered() == 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			if err := c.w.Flush(); err != nil {
				if isTimeout(err) {
					s.mx.deadlineEvictions.Inc()
				}
				return
			}
		}
	}
}

// processWindow executes a decoded window in order: maximal runs of
// batchable commands go through dataBatch, everything else through the
// single-command dispatch. Returns false when the connection must close.
func (c *connState) processWindow(cmds []resp.Command) bool {
	for i := 0; i < len(cmds); {
		if !c.batchable(&cmds[i]) {
			if !c.dispatch(cmds[i].Args) {
				return false
			}
			i++
			continue
		}
		j := i + 1
		for j < len(cmds) && c.batchable(&cmds[j]) {
			j++
		}
		if j-i == 1 {
			if !c.dispatch(cmds[i].Args) {
				return false
			}
		} else if !c.dataBatch(cmds[i:j]) {
			return false
		}
		i = j
	}
	return true
}

// batchable reports whether cmd can join a store batch: a well-formed
// GET or SET. Malformed forms keep their single-command error replies,
// and everything else (DEL, INCRBY, PING, QUIT, ...) is a barrier the
// window executes in place.
func (c *connState) batchable(cmd *resp.Command) bool {
	if testPanicCommand != "" {
		return false // preserve injected-panic semantics in tests
	}
	if cmd.Is("GET") {
		return len(cmd.Args) == 2 && len(cmd.Args[1]) > 0
	}
	if cmd.Is("SET") {
		return len(cmd.Args) == 3 && len(cmd.Args[1]) > 0 &&
			len(cmd.Args[2]) <= c.s.cfg.MaxValueBytes
	}
	return false
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// slowConn is the read side of a connection with per-read deadline
// renewal: every read that delivers bytes pushes the deadline out by
// per. The handler's idle deadline governs the silent wait before a
// command; this governs the flow once bytes started arriving.
type slowConn struct {
	net.Conn
	per time.Duration
}

func (c *slowConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && c.per > 0 {
		c.Conn.SetReadDeadline(time.Now().Add(c.per))
	}
	return n, err
}

// Pipelining window shape: a burst of buffered commands is decoded into
// pooled per-slot storage and executed as store batches.
const (
	// maxWindowCmds caps commands decoded per window (the ExecBatch size).
	maxWindowCmds = 64
	// windowByteBudget caps the decoded argument bytes a window may pin.
	windowByteBudget = 256 << 10
	// slotOutBytes sizes the pooled per-slot GET output (frame header +
	// payload); larger stored values take the exact-size fallback re-read.
	slotOutBytes = 8 + 4096
	// inlineReplyMax is the largest GET payload copied into the reply
	// scratch; larger payloads ride as their own vectored-write element,
	// straight from the slot buffer.
	inlineReplyMax = 512
)

// replySeg marks a boundary in the batched reply scratch: everything up
// to end is one net.Buffers element, followed by payload (when non-nil)
// as a zero-copy element of its own.
type replySeg struct {
	end     int
	payload []byte
}

// connState is one connection's parsing and reply state. The batch
// fields are pooled per connection so a steady pipelined workload
// decodes, executes and replies without per-command allocations.
type connState struct {
	s    *Server
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
	out  []byte // read output buffer: 8-byte frame header + max value

	cmds  []resp.Command   // per-slot pooled command decode storage
	bops  []faster.BatchOp // batch ops, 1:1 with the run's commands
	outs  [][]byte         // per-slot pooled GET outputs (lazily allocated)
	val   []byte           // arena for the run's framed SET values
	reply []byte           // reply scratch for the vectored write
	segs  []replySeg
	vecs  net.Buffers
}

// testPanicCommand, when set (tests only, before serving starts), makes
// dispatch panic on that command — the recovery tests use it to prove a
// handler panic costs one connection, not the process.
var testPanicCommand string

// dispatch executes one command; false means the connection must close.
func (c *connState) dispatch(args [][]byte) bool {
	s := c.s
	s.mx.commands.Inc()
	if testPanicCommand != "" && len(args) > 0 && commandName(args[0]) == testPanicCommand {
		panic("injected handler panic: " + testPanicCommand)
	}
	if len(args) == 0 {
		c.w.WriteError("ERR empty command")
		return true
	}
	name := commandName(args[0])
	switch name {
	case "PING":
		if len(args) > 1 {
			c.w.WriteBulk(args[1])
		} else {
			c.w.WriteSimple("PONG")
		}
		return true
	case "ECHO":
		if len(args) != 2 {
			c.w.WriteError("ERR wrong number of arguments for 'echo'")
			return true
		}
		c.w.WriteBulk(args[1])
		return true
	case "COMMAND":
		// Enough for redis-cli's handshake.
		c.w.WriteArrayHeader(0)
		return true
	case "QUIT":
		c.w.WriteSimple("OK")
		return false
	case "GET", "SET", "DEL", "INCRBY":
		return c.dataCommand(name, args)
	case "COMPACT":
		return c.doCompact(args)
	case "MEMORY":
		return c.doMemory(args)
	default:
		s.mx.unknownCommands.Inc()
		c.w.WriteError(fmt.Sprintf("ERR unknown command '%s'", name))
		return true
	}
}

// commandName upper-cases an ASCII command word without allocating for
// the already-uppercase common case.
func commandName(b []byte) string {
	for _, ch := range b {
		if 'a' <= ch && ch <= 'z' {
			up := make([]byte, len(b))
			for i, c := range b {
				if 'a' <= c && c <= 'z' {
					c -= 'a' - 'A'
				}
				up[i] = c
			}
			return string(up)
		}
	}
	return string(b)
}

// dataCommand runs a store-touching command under the health gate, the
// admission semaphore and the session pool. Returns false to close the
// connection (Failed sheds).
func (c *connState) dataCommand(name string, args [][]byte) bool {
	s := c.s
	isWrite := name != "GET"

	// Health ladder. ReadOnly: writes fail fast, reads keep serving.
	// Failed: shed the connection — nothing behind us can serve it.
	switch s.store.Health() {
	case faster.Failed:
		s.mx.failedRejects.Inc()
		c.w.WriteError("FAILED store failed (device lost)")
		return false
	case faster.ReadOnly:
		if isWrite {
			s.mx.readonlyRejects.Inc()
			c.w.WriteError("READONLY store is read-only (write path lost)")
			return true
		}
	}

	// Admission: a full semaphore sheds immediately — the explicit
	// -OVERLOADED contract, never an unbounded queue.
	select {
	case s.inflight <- struct{}{}:
	default:
		s.mx.overloadSheds.Inc()
		c.w.WriteError("OVERLOADED too many requests in flight")
		return true
	}
	defer func() { <-s.inflight }()
	s.mx.inflightDepth.Inc()
	defer s.mx.inflightDepth.Dec()

	// Session pool: bounded wait, then shed. Fast path first.
	sess, shed, down := s.acquireSession()
	if down {
		c.w.WriteError("ERR server shutting down")
		return false
	}
	if shed {
		c.w.WriteError("OVERLOADED no session available")
		return true
	}
	sess.Unpark()
	healthy := true
	defer func() {
		if healthy {
			sess.Park()
			s.sessions <- sess
		} else {
			s.retireSession(sess)
		}
	}()

	start := time.Now()
	defer func() { s.mx.cmdLatency.Observe(time.Since(start)) }()

	switch name {
	case "GET":
		healthy = c.doGet(sess, args)
	case "SET":
		healthy = c.doSet(sess, args)
	case "DEL":
		healthy = c.doDel(sess, args)
	case "INCRBY":
		healthy = c.doIncrBy(sess, args)
	}
	return true
}

// acquireSession takes a pooled session under the acquire timeout.
// shed means the pool stayed empty past the timeout (-OVERLOADED);
// down means the server is shutting down (close the connection).
func (s *Server) acquireSession() (sess *faster.Session, shed, down bool) {
	select {
	case sess = <-s.sessions:
		return sess, false, false
	default:
	}
	t := time.NewTimer(s.cfg.AcquireTimeout)
	select {
	case sess = <-s.sessions:
		t.Stop()
		return sess, false, false
	case <-t.C:
		s.mx.overloadSheds.Inc()
		return nil, true, false
	case <-s.done:
		t.Stop()
		return nil, false, true
	}
}

// retireSession handles a session whose pending operations outlived the
// per-op deadline: it is pulled from rotation and drained off the hot
// path; if the drain completes the session rejoins the pool, otherwise
// it is abandoned (counted — its epoch slot is lost until restart, which
// is the correct trade against a handler goroutine wedged forever).
func (s *Server) retireSession(sess *faster.Session) {
	s.mx.sessionsRetired.Inc()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				s.mx.panics.Inc()
				s.abandoned.Add(1)
			}
		}()
		if _, err := sess.CompletePendingTimeout(2 * s.cfg.OpTimeout); err == nil {
			sess.Park()
			s.sessions <- sess
			return
		}
		// Abandoned: never Close (it would block on the wedged op), but
		// park it so the dead session at least stops pinning the epoch —
		// otherwise one wedged client request would stall flushes and
		// evictions for every other session until restart.
		sess.Park()
		s.abandoned.Add(1)
	}()
}

// ---------------------------------------------------------------------------
// Command execution
// ---------------------------------------------------------------------------

// opToken is the ctx attached to asynchronous operations so their
// results can be matched out of CompletePending.
type opToken struct{}

// drainPending completes one Pending operation under the op deadline.
func (c *connState) drainPending(sess *faster.Session, token *opToken) (faster.Result, bool) {
	results, err := sess.CompletePendingTimeout(c.s.cfg.OpTimeout)
	if err != nil {
		c.s.mx.pendingTimeouts.Inc()
		c.w.WriteError("TIMEOUT operation did not complete in time")
		return faster.Result{}, false
	}
	for _, r := range results {
		if r.Ctx == token {
			return r, true
		}
	}
	// The session had no foreign work (one command at a time), so a
	// missing result is a bug worth surfacing loudly.
	c.w.WriteError("ERR internal: pending result lost")
	return faster.Result{}, false
}

// writeStoreErr renders a store error as a RESP error reply.
func (c *connState) writeStoreErr(err error) {
	switch {
	case errors.Is(err, faster.ErrReadOnly):
		c.s.mx.readonlyRejects.Inc()
		c.w.WriteError("READONLY store is read-only (write path lost)")
	case errors.Is(err, faster.ErrStoreFailed):
		c.s.mx.failedRejects.Inc()
		c.w.WriteError("FAILED store failed (device lost)")
	default:
		c.w.WriteError("ERR " + err.Error())
	}
}

func (c *connState) doGet(sess *faster.Session, args [][]byte) bool {
	if len(args) != 2 || len(args[1]) == 0 {
		c.w.WriteError("ERR wrong number of arguments for 'get'")
		return true
	}
	st, err, ok := c.readValue(sess, args[1])
	if !ok {
		return false
	}
	switch st {
	case faster.OK:
		payload, ok := faster.VarLenDecode(c.out)
		if !ok {
			c.w.WriteError("ERR stored value exceeds server read buffer")
			return true
		}
		c.w.WriteBulk(payload)
	case faster.NotFound:
		c.w.WriteNil()
	default:
		c.writeStoreErr(err)
	}
	return true
}

// readValue reads args key into c.out, draining a Pending completion.
// ok=false means the session must be retired (pending timeout).
func (c *connState) readValue(sess *faster.Session, key []byte) (faster.Status, error, bool) {
	return c.readInto(sess, key, c.out)
}

// readInto is readValue with an explicit output buffer.
func (c *connState) readInto(sess *faster.Session, key, out []byte) (faster.Status, error, bool) {
	token := &opToken{}
	st, err := sess.Read(key, nil, out, token)
	if st == faster.Pending {
		r, ok := c.drainPending(sess, token)
		if !ok {
			return faster.Err, nil, false
		}
		st, err = r.Status, r.Err
	}
	return st, err, true
}

func (c *connState) doSet(sess *faster.Session, args [][]byte) bool {
	if len(args) != 3 || len(args[1]) == 0 {
		c.w.WriteError("ERR wrong number of arguments for 'set'")
		return true
	}
	if len(args[2]) > c.s.cfg.MaxValueBytes {
		c.w.WriteError(fmt.Sprintf("ERR value exceeds %d bytes", c.s.cfg.MaxValueBytes))
		return true
	}
	st, err := sess.Upsert(args[1], faster.VarLenEncode(args[2]))
	if st == faster.OK {
		c.w.WriteSimple("OK")
	} else {
		c.writeStoreErr(err)
	}
	return true
}

func (c *connState) doDel(sess *faster.Session, args [][]byte) bool {
	if len(args) < 2 {
		c.w.WriteError("ERR wrong number of arguments for 'del'")
		return true
	}
	deleted := int64(0)
	for _, key := range args[1:] {
		if len(key) == 0 {
			continue
		}
		st, err := sess.Delete(key)
		switch st {
		case faster.OK:
			deleted++
		case faster.NotFound:
		default:
			c.writeStoreErr(err)
			return true
		}
	}
	c.w.WriteInt(deleted)
	return true
}

func (c *connState) doIncrBy(sess *faster.Session, args [][]byte) bool {
	if len(args) != 3 || len(args[1]) == 0 {
		c.w.WriteError("ERR wrong number of arguments for 'incrby'")
		return true
	}
	delta, perr := strconv.ParseInt(string(args[2]), 10, 64)
	if perr != nil {
		c.w.WriteError("ERR value is not an integer or out of range")
		return true
	}
	key := args[1]

	// Type pre-check: INCRBY on a non-counter value is a client error,
	// not a reset. (A concurrent SET can still race this check; the ops'
	// reset semantics keep that race well-defined.)
	st, err, ok := c.readValue(sess, key)
	if !ok {
		return false
	}
	if st == faster.OK {
		if _, isCtr := faster.VarLenCounter(c.out); !isCtr {
			c.w.WriteError("ERR value is not an integer or out of range")
			return true
		}
	} else if st == faster.Err {
		c.writeStoreErr(err)
		return true
	}

	// The 9th input byte is VarLenOps's overflow status channel: the
	// updater writes 1 there instead of wrapping the counter. On the
	// pending path the updater ran against the store's copy of the input,
	// so the verdict comes back in Result.Input.
	var input [9]byte
	binary.LittleEndian.PutUint64(input[:8], uint64(delta))
	token := &opToken{}
	st, err = sess.RMW(key, input[:], token)
	overflowed := input[8] != 0
	if st == faster.Pending {
		r, rok := c.drainPending(sess, token)
		if !rok {
			return false
		}
		st, err = r.Status, r.Err
		overflowed = len(r.Input) >= 9 && r.Input[8] != 0
	}
	if st != faster.OK {
		c.writeStoreErr(err)
		return true
	}
	if overflowed {
		// A client asking for an impossible increment is not a store
		// fault: reply like Redis does and leave the counter (and the
		// health ladder) untouched.
		c.w.WriteError("ERR increment or decrement would overflow")
		return true
	}

	// Report the updated counter. Under concurrent INCRBY of the same
	// key the read may observe later increments — the reply is a recent
	// value, not a linearisation point (documented deviation).
	st, err, ok = c.readValue(sess, key)
	if !ok {
		return false
	}
	if st != faster.OK {
		c.writeStoreErr(fmt.Errorf("counter vanished: %v %v", st, err))
		return true
	}
	n, isCtr := faster.VarLenCounter(c.out)
	if !isCtr {
		c.w.WriteError("ERR value is not an integer or out of range")
		return true
	}
	c.w.WriteInt(n)
	return true
}

// doCompact runs a log compaction over the whole stable region and
// replies with the number of log bytes reclaimed. The command runs on
// the connection goroutine without a pooled session (Compact drives its
// own); concurrent COMPACTs serialize inside the store.
func (c *connState) doCompact(args [][]byte) bool {
	s := c.s
	if len(args) != 1 {
		c.w.WriteError("ERR wrong number of arguments for 'compact'")
		return true
	}
	switch s.store.Health() {
	case faster.Failed:
		s.mx.failedRejects.Inc()
		c.w.WriteError("FAILED store failed (device lost)")
		return false
	case faster.ReadOnly:
		s.mx.readonlyRejects.Inc()
		c.w.WriteError("READONLY store is read-only (write path lost)")
		return true
	}
	s.mx.compactRuns.Inc()
	stats, err := s.store.Compact(s.store.Log().SafeReadOnlyAddress())
	if err != nil {
		c.writeStoreErr(err)
		return true
	}
	c.w.WriteInt(int64(stats.ReclaimedBytes))
	return true
}

// doMemory reports the log's space accounting as a flat array of
// name/value bulk-string pairs (MEMORY or MEMORY STATS).
func (c *connState) doMemory(args [][]byte) bool {
	if len(args) > 2 || (len(args) == 2 && commandName(args[1]) != "STATS") {
		c.w.WriteError("ERR unknown MEMORY subcommand")
		return true
	}
	store := c.s.store
	l := store.Log()
	m := store.Metrics()
	pairs := [][2]string{
		{"begin_address", strconv.FormatUint(l.BeginAddress(), 10)},
		{"head_address", strconv.FormatUint(l.HeadAddress(), 10)},
		{"safe_read_only_address", strconv.FormatUint(l.SafeReadOnlyAddress(), 10)},
		{"tail_address", strconv.FormatUint(l.TailAddress(), 10)},
		{"log_bytes", strconv.FormatUint(l.TailAddress()-l.BeginAddress(), 10)},
		{"stable_bytes", strconv.FormatUint(m.Log.StableBytes, 10)},
		{"mutable_bytes", strconv.FormatUint(m.Log.MutableBytes, 10)},
		{"compactions", strconv.FormatUint(m.Compactions, 10)},
		{"compacted_bytes", strconv.FormatUint(m.CompactedBytes, 10)},
		{"reclaimed_bytes", strconv.FormatUint(m.ReclaimedBytes, 10)},
		{"truncated_until", strconv.FormatUint(m.Log.TruncatedUntil, 10)},
		{"truncated_bytes", strconv.FormatUint(m.Log.TruncatedBytes, 10)},
	}
	if stored, ok := store.DeviceStoredBytes(); ok {
		pairs = append(pairs, [2]string{"device_stored_bytes", strconv.FormatUint(stored, 10)})
	}
	c.w.WriteArrayHeader(2 * len(pairs))
	for _, p := range pairs {
		c.w.WriteBulk([]byte(p[0]))
		c.w.WriteBulk([]byte(p[1]))
	}
	return true
}

// ---------------------------------------------------------------------------
// Batched execution (pipelined GET/SET windows)
// ---------------------------------------------------------------------------

// dataBatch executes a run of well-formed GET/SET commands as one store
// batch: the health gate, admission token and pooled session are paid
// once for the run, the operations go through Session.ExecBatch, and the
// replies leave in a single vectored write. Per-command semantics match
// the single-op path; only the bookkeeping is amortized. Returns false
// when the connection must close.
func (c *connState) dataBatch(cmds []resp.Command) bool {
	s := c.s

	// Health ladder, once per run. ReadOnly degrades to the single-op
	// path so SETs get their -READONLY replies while GETs keep serving;
	// batching is a fast-path concern, not a degraded-mode one.
	switch s.store.Health() {
	case faster.Failed:
		s.mx.commands.Inc()
		s.mx.failedRejects.Inc()
		c.w.WriteError("FAILED store failed (device lost)")
		return false
	case faster.ReadOnly:
		for i := range cmds {
			if !c.dispatch(cmds[i].Args) {
				return false
			}
		}
		return true
	}
	s.mx.commands.Add(uint64(len(cmds)))

	// Admission: one token per run — a batch is one unit of store work.
	select {
	case s.inflight <- struct{}{}:
	default:
		s.mx.overloadSheds.Inc()
		for range cmds {
			c.w.WriteError("OVERLOADED too many requests in flight")
		}
		return true
	}
	defer func() { <-s.inflight }()
	s.mx.inflightDepth.Inc()
	defer s.mx.inflightDepth.Dec()

	sess, shed, down := s.acquireSession()
	if down {
		c.w.WriteError("ERR server shutting down")
		return false
	}
	if shed {
		for range cmds {
			c.w.WriteError("OVERLOADED no session available")
		}
		return true
	}
	sess.Unpark()
	healthy := true
	defer func() {
		if healthy {
			sess.Park()
			s.sessions <- sess
		} else {
			s.retireSession(sess)
		}
	}()

	start := time.Now()
	defer func() { s.mx.cmdLatency.Observe(time.Since(start)) }()

	healthy = c.execBatch(sess, cmds)
	return c.flushBatchReplies(cmds)
}

// execBatch builds the BatchOps for a run, executes them, drains any
// pending completions and resolves oversized GETs. Outcomes land in
// c.bops[i].Status/Err with outputs filled; the return value is the
// session's health (false retires it).
func (c *connState) execBatch(sess *faster.Session, cmds []resp.Command) bool {
	s := c.s
	if cap(c.bops) < len(cmds) {
		c.bops = make([]faster.BatchOp, 0, maxWindowCmds)
	}
	c.bops = c.bops[:0]

	// The SET arena is sized up front so appends cannot regrow it and
	// invalidate the value slices already handed to earlier ops.
	need := 0
	for i := range cmds {
		if cmds[i].Is("SET") {
			need += 8 + len(cmds[i].Args[2])
		}
	}
	if cap(c.val) < need {
		c.val = make([]byte, 0, need)
	}
	val := c.val[:0]

	for i := range cmds {
		cmd := &cmds[i]
		if cmd.Is("GET") {
			c.bops = append(c.bops, faster.BatchOp{
				Kind: faster.BatchRead, Key: cmd.Args[1],
				Output: c.slotOut(i), Ctx: i,
			})
			continue
		}
		frame := faster.VarLenAppend(val, cmd.Args[2])
		c.bops = append(c.bops, faster.BatchOp{
			Kind: faster.BatchUpsert, Key: cmd.Args[1],
			Value: frame[len(val):], Ctx: i,
		})
		val = frame
	}

	if err := sess.ExecBatch(c.bops); err != nil {
		for i := range c.bops {
			c.bops[i].Status, c.bops[i].Err = faster.Err, err
		}
		return true
	}

	// Drain pending completions (cold GETs) once for the whole run.
	healthy := true
	pending := 0
	for i := range c.bops {
		if c.bops[i].Status == faster.Pending {
			pending++
		}
	}
	if pending > 0 {
		results, err := sess.CompletePendingTimeout(s.cfg.OpTimeout)
		if err != nil {
			s.mx.pendingTimeouts.Inc()
			healthy = false // unresolved slots reply -TIMEOUT below
		} else {
			for _, r := range results {
				if k, ok := r.Ctx.(int); ok && k >= 0 && k < len(c.bops) {
					c.bops[k].Status, c.bops[k].Err = r.Status, r.Err
				}
			}
		}
	}

	// Oversized values: the pooled slot buffer was too small, so re-read
	// through an exact-size buffer (rare path; the allocation is the
	// price of not sizing every slot for the maximum value).
	for i := range c.bops {
		op := &c.bops[i]
		if !healthy || op.Kind != faster.BatchRead || op.Status != faster.OK {
			continue
		}
		if _, ok := faster.VarLenDecode(op.Output); !ok {
			big := make([]byte, 8+s.cfg.MaxValueBytes)
			st, err, ok := c.readInto(sess, op.Key, big)
			if !ok {
				healthy = false
				op.Status = faster.Pending // renders as -TIMEOUT
				continue
			}
			op.Status, op.Err, op.Output = st, err, big
		}
	}
	return healthy
}

// slotOut returns slot i's pooled GET output buffer.
func (c *connState) slotOut(i int) []byte {
	for len(c.outs) <= i {
		c.outs = append(c.outs, nil)
	}
	if c.outs[i] == nil {
		c.outs[i] = make([]byte, slotOutBytes)
	}
	return c.outs[i]
}

// flushBatchReplies renders the run's replies into the pooled reply
// scratch — large GET payloads ride as zero-copy elements — and sends
// everything with one vectored write. The resp.Writer is flushed first
// so earlier single-command replies keep their place in the stream.
func (c *connState) flushBatchReplies(cmds []resp.Command) bool {
	c.reply = c.reply[:0]
	c.segs = c.segs[:0]
	for i := range cmds {
		op := &c.bops[i]
		if op.Kind == faster.BatchUpsert {
			if op.Status == faster.OK {
				c.reply = append(c.reply, "+OK\r\n"...)
			} else {
				c.appendErrReply(op.Err)
			}
			continue
		}
		switch op.Status {
		case faster.OK:
			payload, ok := faster.VarLenDecode(op.Output)
			if !ok {
				c.reply = append(c.reply, "-ERR stored value exceeds server read buffer\r\n"...)
				continue
			}
			c.reply = append(c.reply, '$')
			c.reply = strconv.AppendInt(c.reply, int64(len(payload)), 10)
			c.reply = append(c.reply, '\r', '\n')
			if len(payload) <= inlineReplyMax {
				c.reply = append(c.reply, payload...)
			} else {
				c.segs = append(c.segs, replySeg{end: len(c.reply), payload: payload})
			}
			c.reply = append(c.reply, '\r', '\n')
		case faster.NotFound:
			c.reply = append(c.reply, "$-1\r\n"...)
		case faster.Pending:
			c.s.mx.pendingTimeouts.Inc()
			c.reply = append(c.reply, "-TIMEOUT operation did not complete in time\r\n"...)
		default:
			c.appendErrReply(op.Err)
		}
	}
	c.segs = append(c.segs, replySeg{end: len(c.reply)})

	c.conn.SetWriteDeadline(time.Now().Add(c.s.cfg.WriteTimeout))
	if err := c.w.Flush(); err != nil {
		if isTimeout(err) {
			c.s.mx.deadlineEvictions.Inc()
		}
		return false
	}
	c.vecs = c.vecs[:0]
	prev := 0
	for _, seg := range c.segs {
		if seg.end > prev {
			c.vecs = append(c.vecs, c.reply[prev:seg.end])
		}
		prev = seg.end
		if seg.payload != nil {
			c.vecs = append(c.vecs, seg.payload)
		}
	}
	if _, err := c.vecs.WriteTo(c.conn); err != nil {
		if isTimeout(err) {
			c.s.mx.deadlineEvictions.Inc()
		}
		return false
	}
	return true
}

// appendErrReply renders a store error into the batched reply scratch,
// mirroring writeStoreErr.
func (c *connState) appendErrReply(err error) {
	switch {
	case errors.Is(err, faster.ErrReadOnly):
		c.s.mx.readonlyRejects.Inc()
		c.reply = append(c.reply, "-READONLY store is read-only (write path lost)\r\n"...)
	case errors.Is(err, faster.ErrStoreFailed):
		c.s.mx.failedRejects.Inc()
		c.reply = append(c.reply, "-FAILED store failed (device lost)\r\n"...)
	case err != nil:
		c.reply = append(c.reply, "-ERR "...)
		for _, b := range []byte(err.Error()) {
			if b == '\r' || b == '\n' {
				b = ' '
			}
			c.reply = append(c.reply, b)
		}
		c.reply = append(c.reply, '\r', '\n')
	default:
		c.reply = append(c.reply, "-ERR unknown store error\r\n"...)
	}
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

// Close gracefully drains the server: stop accepting, let in-flight
// commands finish under the drain deadline, evict what remains, drain
// and close every pooled session, and (when configured) take a final
// checkpoint. Safe to call multiple times.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.drain() })
	return s.closeErr
}

func (s *Server) drain() error {
	start := time.Now()
	deadline := start.Add(s.cfg.DrainTimeout)
	s.draining.Store(true)
	close(s.done)
	s.ln.Close()

	var err error

	// Phase 1: let in-flight commands complete. New commands are still
	// parsed on open connections but data commands will shed once the
	// drain closes their conns; we give the ones already executing their
	// chance to finish and be acknowledged.
	for len(s.inflight) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(s.inflight) > 0 {
		err = ErrDrainTimeout
	}

	// Phase 2: evict remaining connections (idle readers unblock with an
	// error; slow writers hit their write deadline) and wait for every
	// handler and retirer goroutine.
	s.closeConns()
	s.wg.Wait()

	// Phase 3: drain the session pool. Every handler has exited, so all
	// live sessions are in the channel; each is completed under the
	// remaining deadline and closed.
	drained := 0
	for {
		select {
		case sess := <-s.sessions:
			sess.Unpark()
			left := time.Until(deadline)
			if left < 100*time.Millisecond {
				left = 100 * time.Millisecond
			}
			if _, derr := sess.CompletePendingTimeout(left); derr != nil {
				s.abandoned.Add(1)
				if err == nil {
					err = ErrDrainTimeout
				}
				continue // do not Close: it would block on the wedged op
			}
			sess.Close()
			drained++
		default:
			goto donePool
		}
	}
donePool:

	// Phase 4: optional final checkpoint — only when the write path is
	// alive and no abandoned session can pin the epoch.
	if s.cfg.CheckpointDir != "" && s.store.Health() <= faster.Degraded && s.abandoned.Load() == 0 {
		if _, cerr := s.store.Checkpoint(s.cfg.CheckpointDir); cerr != nil && err == nil {
			err = fmt.Errorf("server: drain checkpoint: %w", cerr)
		}
	}

	s.mx.drains.Inc()
	s.mx.drainNs.Set(time.Since(start).Nanoseconds())
	return err
}
