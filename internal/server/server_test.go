package server

import (
	"bytes"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faster"
	"repro/internal/resp"
	"repro/internal/testutil"
)

// newTestServer opens a Mem-backed VarLenOps store and a front-end on a
// loopback port, torn down (drain first, then store) via t.Cleanup.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	dev := device.NewMem(device.MemConfig{})
	s, err := faster.Open(faster.Config{
		Ops: faster.VarLenOps{}, IndexBuckets: 1 << 10,
		PageBits: 14, BufferPages: 16, MutableFraction: 0.75,
		Device: dev,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe(s, "127.0.0.1:0", cfg)
	if err != nil {
		s.Close()
		dev.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		s.Close()
		dev.Close()
	})
	return srv
}

func dialT(t *testing.T, srv *Server) *resp.Client {
	t.Helper()
	c, err := resp.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerRoundTrips(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := newTestServer(t, Config{})
	c := dialT(t, srv)

	check := func(v resp.Value, err error, kind resp.Kind, str string, n int64) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if v.Kind != kind {
			t.Fatalf("kind = %c, want %c (%q)", v.Kind, kind, v.Str)
		}
		if str != "" && string(v.Str) != str {
			t.Fatalf("str = %q, want %q", v.Str, str)
		}
		if kind == resp.Integer && v.Int != n {
			t.Fatalf("int = %d, want %d", v.Int, n)
		}
	}

	v, err := c.Do([]byte("PING"))
	check(v, err, resp.SimpleString, "PONG", 0)
	v, err = c.Do([]byte("ECHO"), []byte("hello"))
	check(v, err, resp.BulkString, "hello", 0)

	v, err = c.Do([]byte("SET"), []byte("k1"), []byte("v1"))
	check(v, err, resp.SimpleString, "OK", 0)
	v, err = c.Do([]byte("GET"), []byte("k1"))
	check(v, err, resp.BulkString, "v1", 0)
	v, err = c.Do([]byte("GET"), []byte("missing"))
	check(v, err, resp.Nil, "", 0)

	// Binary-safe value.
	blob := []byte{0, 1, '\r', '\n', 255, 0}
	v, err = c.Do([]byte("SET"), []byte("bin"), blob)
	check(v, err, resp.SimpleString, "OK", 0)
	v, err = c.Do([]byte("GET"), []byte("bin"))
	if err != nil || !bytes.Equal(v.Str, blob) {
		t.Fatalf("binary round-trip: %q %v", v.Str, err)
	}

	v, err = c.Do([]byte("DEL"), []byte("k1"), []byte("missing"))
	check(v, err, resp.Integer, "", 1)
	v, err = c.Do([]byte("GET"), []byte("k1"))
	check(v, err, resp.Nil, "", 0)

	v, err = c.Do([]byte("INCRBY"), []byte("ctr"), []byte("5"))
	check(v, err, resp.Integer, "", 5)
	v, err = c.Do([]byte("INCRBY"), []byte("ctr"), []byte("-2"))
	check(v, err, resp.Integer, "", 3)

	// INCRBY over a blob is a type error, not a reset.
	c.Do([]byte("SET"), []byte("blob"), []byte("not a number"))
	v, err = c.Do([]byte("INCRBY"), []byte("blob"), []byte("1"))
	if err != nil || !v.IsError() || !strings.Contains(string(v.Str), "not an integer") {
		t.Fatalf("INCRBY over blob = %q %v", v.Str, err)
	}
	v, _ = c.Do([]byte("GET"), []byte("blob"))
	if string(v.Str) != "not a number" {
		t.Fatalf("blob clobbered by rejected INCRBY: %q", v.Str)
	}

	// Errors that keep the connection alive.
	v, err = c.Do([]byte("NOSUCH"))
	if err != nil || !v.IsError() {
		t.Fatalf("unknown command: %v %v", v, err)
	}
	v, err = c.Do([]byte("SET"), []byte("k"))
	if err != nil || !v.IsError() {
		t.Fatalf("bad arity: %v %v", v, err)
	}
	v, err = c.Do([]byte("PING"))
	check(v, err, resp.SimpleString, "PONG", 0)
}

func TestServerPipelining(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := newTestServer(t, Config{})
	c := dialT(t, srv)

	const n = 500
	cmds := make([][][]byte, 0, 2*n)
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		v := []byte(fmt.Sprintf("val-%d", i))
		cmds = append(cmds, [][]byte{[]byte("SET"), k, v})
	}
	for i := 0; i < n; i++ {
		cmds = append(cmds, [][]byte{[]byte("GET"), []byte(fmt.Sprintf("key-%d", i))})
	}
	replies, err := c.Pipeline(cmds)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2*n {
		t.Fatalf("%d replies, want %d", len(replies), 2*n)
	}
	for i := 0; i < n; i++ {
		if replies[i].Kind != resp.SimpleString {
			t.Fatalf("SET %d: %v", i, replies[i])
		}
		got := replies[n+i]
		if got.Kind != resp.BulkString || string(got.Str) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("GET %d = %q", i, got.Str)
		}
	}
}

func TestServerValueTooLarge(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := newTestServer(t, Config{MaxValueBytes: 64})
	c := dialT(t, srv)

	v, err := c.Do([]byte("SET"), []byte("k"), bytes.Repeat([]byte("x"), 65))
	if err != nil || !v.IsError() || !strings.Contains(string(v.Str), "exceeds") {
		t.Fatalf("oversized SET = %q %v", v.Str, err)
	}
	// Connection still healthy, and a max-sized value fits exactly.
	v, err = c.Do([]byte("SET"), []byte("k"), bytes.Repeat([]byte("y"), 64))
	if err != nil || v.Kind != resp.SimpleString {
		t.Fatalf("max-sized SET = %v %v", v, err)
	}
	v, err = c.Do([]byte("GET"), []byte("k"))
	if err != nil || len(v.Str) != 64 {
		t.Fatalf("max-sized GET = %d bytes, %v", len(v.Str), err)
	}
}

func TestServerConnectionCap(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := newTestServer(t, Config{MaxConns: 1})

	c1 := dialT(t, srv)
	if v, err := c1.Do([]byte("PING")); err != nil || v.Kind != resp.SimpleString {
		t.Fatalf("first conn: %v %v", v, err)
	}

	// The second connection is shed at accept with an explicit error.
	c2, err := resp.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	v, err := c2.Do([]byte("PING"))
	if err == nil {
		if !v.IsError() || !strings.Contains(string(v.Str), "OVERLOADED") {
			t.Fatalf("second conn reply = %v, want -OVERLOADED", v)
		}
	}
	// Either way the connection must be closed promptly.
	c2.Conn().SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c2.Conn().Read(make([]byte, 1)); err == nil {
		t.Fatal("shed connection left open")
	}

	if got := srv.Metrics().ConnsRejected; got != 1 {
		t.Fatalf("ConnsRejected = %d, want 1", got)
	}

	// Dropping the first connection frees the slot.
	c1.Close()
	testutil.WaitUntil(t, 2*time.Second, func() bool {
		c3, err := resp.Dial(srv.Addr())
		if err != nil {
			return false
		}
		v, err := c3.Do([]byte("PING"))
		c3.Close()
		return err == nil && v.Kind == resp.SimpleString
	}, "slot to free after close")
}

func TestServerIdleEviction(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := newTestServer(t, Config{IdleTimeout: 100 * time.Millisecond})

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing; the server must hang up on us.
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle connection not evicted")
	}
	testutil.WaitUntil(t, 2*time.Second,
		func() bool { return srv.Metrics().DeadlineEvictions > 0 },
		"eviction to be counted")
}

func TestServerPanicRecovery(t *testing.T) {
	testutil.CheckGoroutines(t)
	testPanicCommand = "BOOM"
	defer func() { testPanicCommand = "" }()
	srv := newTestServer(t, Config{})

	// The panicking handler loses its connection...
	c1 := dialT(t, srv)
	if _, err := c1.Do([]byte("BOOM")); err == nil {
		t.Fatal("poisoned command got a reply")
	}
	testutil.WaitUntil(t, 2*time.Second,
		func() bool { return srv.Metrics().Panics > 0 },
		"panic to be counted")

	// ...and the server keeps serving everyone else.
	c2 := dialT(t, srv)
	if v, err := c2.Do([]byte("PING")); err != nil || v.Kind != resp.SimpleString {
		t.Fatalf("server dead after handler panic: %v %v", v, err)
	}

	// Malformed-but-legal requests keep the connection alive.
	v, err := c2.Do([]byte("GET"), []byte{})
	if err != nil || !v.IsError() {
		t.Fatalf("empty key = %v %v", v, err)
	}
	if v, err := c2.Do([]byte("PING")); err != nil || v.Kind != resp.SimpleString {
		t.Fatalf("connection dead after bad request: %v %v", v, err)
	}
}

func TestServerAdminEndpoints(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := newTestServer(t, Config{})
	c := dialT(t, srv)
	if _, err := c.Do([]byte("SET"), []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()

	get := func(path string) (int, string) {
		t.Helper()
		res, err := admin.Client().Get(admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := res.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return res.StatusCode, sb.String()
	}

	code, body := get("/healthz")
	if code != 200 || !strings.Contains(body, `"ready": true`) {
		t.Fatalf("healthz = %d %q", code, body)
	}
	code, body = get("/metrics")
	if code != 200 || !strings.Contains(body, "server.commands") || !strings.Contains(body, "faster.reads") {
		t.Fatalf("metrics = %d %q", code, body[:min(len(body), 200)])
	}

	// Draining flips readiness.
	if err := srv.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	code, body = get("/healthz")
	if code != 503 || !strings.Contains(body, `"draining": true`) {
		t.Fatalf("healthz after drain = %d %q", code, body)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := newTestServer(t, Config{})
	c := dialT(t, srv)
	if _, err := c.Do([]byte("SET"), []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// New connections are refused after drain.
	if c, err := resp.Dial(srv.Addr()); err == nil {
		c.Close()
		t.Fatal("dial succeeded after close")
	}
}

func TestServerSessionCapValidated(t *testing.T) {
	dev := device.NewMem(device.MemConfig{})
	defer dev.Close()
	s, err := faster.Open(faster.Config{
		Ops: faster.VarLenOps{}, IndexBuckets: 1 << 10,
		PageBits: 14, BufferPages: 16, MutableFraction: 0.75,
		Device: dev, MaxSessions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := ListenAndServe(s, "127.0.0.1:0", Config{Sessions: 8}); err == nil {
		t.Fatal("oversized session pool accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestServerPipelinedBatchMixed drives the batched window path with
// everything it has to get right at once: GET/SET runs split by barrier
// commands (DEL, INCRBY, PING), duplicate keys inside a run, payloads
// large enough to ride the vectored-write path, values too big for the
// pooled slot buffer (exact-size fallback re-read), and missing keys —
// all in one pipeline, with reply order checked slot by slot.
func TestServerPipelinedBatchMixed(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := newTestServer(t, Config{})
	c := dialT(t, srv)

	medium := bytes.Repeat([]byte("m"), 2000) // > inlineReplyMax, fits the slot buffer
	large := bytes.Repeat([]byte("L"), 8000)  // > slotOutBytes: fallback re-read
	cmds := [][][]byte{
		{[]byte("SET"), []byte("bk-1"), []byte("v1")},
		{[]byte("SET"), []byte("bk-2"), medium},
		{[]byte("SET"), []byte("bk-3"), large},
		{[]byte("SET"), []byte("bk-1"), []byte("v1b")}, // dup key, last write wins
		{[]byte("GET"), []byte("bk-1")},
		{[]byte("GET"), []byte("bk-2")},
		{[]byte("GET"), []byte("bk-3")},
		{[]byte("GET"), []byte("bk-none")},
		{[]byte("PING")}, // barrier mid-window
		{[]byte("SET"), []byte("ctr"), []byte("\x08\x00\x00\x00\x00\x00\x00\x00\x05\x00\x00\x00\x00\x00\x00\x00")},
		{[]byte("DEL"), []byte("bk-2")}, // barrier
		{[]byte("GET"), []byte("bk-2")},
		{[]byte("GET"), []byte("bk-1")},
	}
	replies, err := c.Pipeline(cmds)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != len(cmds) {
		t.Fatalf("%d replies, want %d", len(replies), len(cmds))
	}
	expectBulk := func(i int, want []byte) {
		t.Helper()
		if replies[i].Kind != resp.BulkString || !bytes.Equal(replies[i].Str, want) {
			t.Fatalf("reply %d = kind %c, %d bytes; want bulk %d bytes", i,
				replies[i].Kind, len(replies[i].Str), len(want))
		}
	}
	for i := 0; i < 4; i++ {
		if replies[i].Kind != resp.SimpleString {
			t.Fatalf("SET %d: %v", i, replies[i])
		}
	}
	expectBulk(4, []byte("v1b"))
	expectBulk(5, medium)
	expectBulk(6, large)
	if replies[7].Kind != resp.Nil {
		t.Fatalf("missing key reply = %v, want nil", replies[7])
	}
	if replies[8].Kind != resp.SimpleString || string(replies[8].Str) != "PONG" {
		t.Fatalf("PING reply = %v", replies[8])
	}
	if replies[9].Kind != resp.SimpleString {
		t.Fatalf("counter SET reply = %v", replies[9])
	}
	if replies[10].Kind != resp.Integer || replies[10].Int != 1 {
		t.Fatalf("DEL reply = %v, want :1", replies[10])
	}
	if replies[11].Kind != resp.Nil {
		t.Fatalf("GET after DEL = %v, want nil", replies[11])
	}
	expectBulk(12, []byte("v1b"))

	// The store agrees with the replies after the batch.
	if v, err := c.Do([]byte("GET"), []byte("bk-3")); err != nil || !bytes.Equal(v.Str, large) {
		t.Fatalf("post-batch GET: %v %v", v.Kind, err)
	}
}

// TestServerPipelinedBatchDeep exercises window chunking: a pipeline far
// longer than one window must produce every reply, in order.
func TestServerPipelinedBatchDeep(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := newTestServer(t, Config{})
	c := dialT(t, srv)

	const n = 300 // several windows of 64
	cmds := make([][][]byte, 0, 2*n)
	for i := 0; i < n; i++ {
		cmds = append(cmds, [][]byte{[]byte("SET"),
			[]byte(fmt.Sprintf("deep-%d", i)), []byte(fmt.Sprintf("dv-%d", i))})
	}
	for i := n - 1; i >= 0; i-- {
		cmds = append(cmds, [][]byte{[]byte("GET"), []byte(fmt.Sprintf("deep-%d", i))})
	}
	replies, err := c.Pipeline(cmds)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if replies[i].Kind != resp.SimpleString {
			t.Fatalf("SET %d: %v", i, replies[i])
		}
		want := fmt.Sprintf("dv-%d", n-1-i)
		if got := replies[n+i]; got.Kind != resp.BulkString || string(got.Str) != want {
			t.Fatalf("GET %d = %q, want %q", i, got.Str, want)
		}
	}
}

func TestServerAdminPprofGated(t *testing.T) {
	testutil.CheckGoroutines(t)
	get := func(srv *Server, path string) int {
		t.Helper()
		admin := httptest.NewServer(srv.AdminHandler())
		defer admin.Close()
		res, err := admin.Client().Get(admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		return res.StatusCode
	}
	if code := get(newTestServer(t, Config{}), "/debug/pprof/heap"); code != 404 {
		t.Fatalf("pprof without EnablePprof = %d, want 404", code)
	}
	if code := get(newTestServer(t, Config{EnablePprof: true}), "/debug/pprof/heap"); code != 200 {
		t.Fatalf("pprof with EnablePprof = %d, want 200", code)
	}
}

func TestServerIncrOverflow(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := newTestServer(t, Config{})
	c := dialT(t, srv)

	max := fmt.Sprintf("%d", int64(^uint64(0)>>1))
	v, err := c.Do([]byte("INCRBY"), []byte("ctr"), []byte(max))
	if err != nil || v.Kind != resp.Integer {
		t.Fatalf("seed to MaxInt64: %v %v", v, err)
	}

	// One more would wrap: Redis-compatible error, counter untouched.
	v, err = c.Do([]byte("INCRBY"), []byte("ctr"), []byte("1"))
	if err != nil || !v.IsError() || !strings.Contains(string(v.Str), "increment or decrement would overflow") {
		t.Fatalf("overflowing INCRBY = %q %v", v.Str, err)
	}
	v, err = c.Do([]byte("INCRBY"), []byte("ctr"), []byte("0"))
	if err != nil || v.Kind != resp.Integer || fmt.Sprintf("%d", v.Int) != max {
		t.Fatalf("counter after rejected overflow = %v %v, want %s", v, err, max)
	}

	// Decrement below MinInt64 is rejected symmetrically.
	v, err = c.Do([]byte("INCRBY"), []byte("neg"), []byte("-9223372036854775808"))
	if err != nil || v.Kind != resp.Integer {
		t.Fatalf("seed to MinInt64: %v %v", v, err)
	}
	v, err = c.Do([]byte("INCRBY"), []byte("neg"), []byte("-1"))
	if err != nil || !v.IsError() || !strings.Contains(string(v.Str), "would overflow") {
		t.Fatalf("underflowing INCRBY = %q %v", v.Str, err)
	}

	// The rejection is a client error, not a store fault: the connection
	// stays up and the health ladder stays green.
	if v, err = c.Do([]byte("PING")); err != nil || string(v.Str) != "PONG" {
		t.Fatalf("connection lost after overflow error: %v %v", v, err)
	}
	if m := srv.Metrics(); m.FailedRejects != 0 || m.ReadonlyRejects != 0 {
		t.Fatalf("overflow errors tripped the health ladder: %+v", m)
	}
}

func TestServerCompactAndMemory(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := newTestServer(t, Config{})
	c := dialT(t, srv)

	// Write two generations so the stable prefix holds dead versions,
	// then push it out of the mutable region.
	val := bytes.Repeat([]byte("v"), 64)
	for round := 0; round < 2; round++ {
		for i := 0; i < 200; i++ {
			k := []byte(fmt.Sprintf("k%03d", i))
			if v, err := c.Do([]byte("SET"), k, val); err != nil || string(v.Str) != "OK" {
				t.Fatalf("set: %v %v", v, err)
			}
		}
	}
	srv.Store().Log().ShiftReadOnlyToTail()

	memStats := func() map[string]string {
		t.Helper()
		v, err := c.Do([]byte("MEMORY"), []byte("STATS"))
		if err != nil || v.Kind != resp.Array || len(v.Elems)%2 != 0 {
			t.Fatalf("MEMORY STATS = %v %v", v, err)
		}
		m := make(map[string]string, len(v.Elems)/2)
		for i := 0; i < len(v.Elems); i += 2 {
			m[string(v.Elems[i].Str)] = string(v.Elems[i+1].Str)
		}
		return m
	}

	before := memStats()
	for _, k := range []string{"begin_address", "tail_address", "compactions", "reclaimed_bytes", "device_stored_bytes"} {
		if _, ok := before[k]; !ok {
			t.Fatalf("MEMORY STATS missing %q: %v", k, before)
		}
	}
	if before["compactions"] != "0" {
		t.Fatalf("compactions before COMPACT = %s, want 0", before["compactions"])
	}

	// SafeReadOnly needs the epoch to drain past the shift; COMPACT
	// no-ops (0 reclaimed) until it has, so retry briefly.
	var reclaimed int64
	testutil.WaitUntil(t, 5*time.Second, func() bool {
		v, err := c.Do([]byte("COMPACT"))
		if err != nil || v.Kind != resp.Integer {
			t.Fatalf("COMPACT = %v %v", v, err)
		}
		reclaimed = v.Int
		return reclaimed > 0
	}, "COMPACT to reclaim bytes once SafeReadOnly drains")

	after := memStats()
	if after["compactions"] == "0" || after["reclaimed_bytes"] == "0" {
		t.Fatalf("MEMORY STATS did not reflect the compaction: %v", after)
	}
	if after["begin_address"] == "64" {
		t.Fatal("begin address did not advance past FirstValidAddress")
	}
	if m := srv.Metrics(); m.CompactRuns == 0 {
		t.Fatalf("compact_runs not counted: %+v", m)
	}

	// Every key must still read back after compaction.
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		if v, err := c.Do([]byte("GET"), k); err != nil || !bytes.Equal(v.Str, val) {
			t.Fatalf("GET %s after COMPACT: %q %v", k, v.Str, err)
		}
	}

	// Arity/subcommand validation.
	if v, _ := c.Do([]byte("MEMORY"), []byte("DOCTOR")); !v.IsError() {
		t.Fatalf("MEMORY DOCTOR accepted: %v", v)
	}
	if v, _ := c.Do([]byte("COMPACT"), []byte("now")); !v.IsError() {
		t.Fatalf("COMPACT with args accepted: %v", v)
	}
}
