package server

import (
	"strings"
	"testing"

	"repro/internal/resp"
)

// expectSimple asserts a +simple-string reply with the exact body.
func expectSimple(t *testing.T, v resp.Value, err error, want string) {
	t.Helper()
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	if v.Kind != resp.SimpleString || string(v.Str) != want {
		t.Fatalf("reply = %c %q, want +%s", v.Kind, v.Str, want)
	}
}

// expectErrContains asserts an -error reply mentioning want.
func expectErrContains(t *testing.T, v resp.Value, err error, want string) {
	t.Helper()
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	if !v.IsError() || !strings.Contains(string(v.Str), want) {
		t.Fatalf("reply = %c %q, want error containing %q", v.Kind, v.Str, want)
	}
}

// TestServerExactlyOnceProtocol drives the SESSION/SERIAL wire protocol
// end to end on one server: attach, ack, replay, stale/gap fencing,
// cross-connection takeover, and stamped SETs through the batch path.
func TestServerExactlyOnceProtocol(t *testing.T) {
	srv := newTestServer(t, Config{Sessions: 4})
	c := dialT(t, srv)

	// Attach: a fresh GUID starts at frontier 0.
	v, err := c.Do([]byte("SESSION"), []byte("proto-client"))
	if err != nil || v.Kind != resp.Integer || v.Int != 0 {
		t.Fatalf("SESSION = %+v %v, want :0", v, err)
	}

	// Stamped INCRBY applies and acks with the updated counter.
	v, err = c.Do([]byte("INCRBY"), []byte("ctr"), []byte("5"), []byte("SERIAL"), []byte("1"))
	expectSimple(t, v, err, "ACK 1 5")

	// Duplicate delivery of the frontier serial: replayed, not re-run.
	v, err = c.Do([]byte("INCRBY"), []byte("ctr"), []byte("5"), []byte("SERIAL"), []byte("1"))
	expectSimple(t, v, err, "ACK 1 5")
	if v, err = c.Do([]byte("INCRBY"), []byte("ctr"), []byte("0")); err != nil || v.Int != 5 {
		t.Fatalf("counter after replay = %+v %v, want :5 (duplicate re-applied)", v, err)
	}

	// Stamped SET and DEL ack with their usual results.
	v, err = c.Do([]byte("SET"), []byte("x"), []byte("v1"), []byte("SERIAL"), []byte("2"))
	expectSimple(t, v, err, "ACK 2 OK")
	v, err = c.Do([]byte("DEL"), []byte("x"), []byte("SERIAL"), []byte("3"))
	expectSimple(t, v, err, "ACK 3 1")

	// Serials at or below the frontier are fenced; skipping ahead is a
	// protocol error; both leave state untouched.
	v, err = c.Do([]byte("SET"), []byte("x"), []byte("zzz"), []byte("SERIAL"), []byte("2"))
	expectErrContains(t, v, err, "STALE")
	v, err = c.Do([]byte("SET"), []byte("x"), []byte("zzz"), []byte("SERIAL"), []byte("9"))
	expectErrContains(t, v, err, "skips")
	if v, err = c.Do([]byte("GET"), []byte("x")); err != nil || v.Kind != resp.Nil {
		t.Fatalf("fenced serial mutated state: GET x = %+v %v", v, err)
	}

	// Stamped SETs ride the pipelined batch path and ack in order.
	replies, err := c.Pipeline([][][]byte{
		{[]byte("SET"), []byte("a"), []byte("1"), []byte("SERIAL"), []byte("4")},
		{[]byte("GET"), []byte("a")},
		{[]byte("SET"), []byte("b"), []byte("2"), []byte("SERIAL"), []byte("5")},
	})
	if err != nil {
		t.Fatal(err)
	}
	expectSimple(t, replies[0], nil, "ACK 4 OK")
	if replies[1].Kind != resp.BulkString || string(replies[1].Str) != "1" {
		t.Fatalf("batched GET = %+v", replies[1])
	}
	expectSimple(t, replies[2], nil, "ACK 5 OK")
	// Replaying a batch-committed serial works like any other.
	v, err = c.Do([]byte("SET"), []byte("b"), []byte("2"), []byte("SERIAL"), []byte("5"))
	expectSimple(t, v, err, "ACK 5 OK")

	// Protocol guards: stamping requires a bound session, is rejected on
	// reads, and serials must be positive integers.
	fresh := dialT(t, srv)
	v, err = fresh.Do([]byte("SET"), []byte("k"), []byte("v"), []byte("SERIAL"), []byte("1"))
	expectErrContains(t, v, err, "no session bound")
	v, err = c.Do([]byte("GET"), []byte("a"), []byte("x"), []byte("SERIAL"), []byte("6"))
	expectErrContains(t, v, err, "not allowed on reads")
	v, err = c.Do([]byte("SET"), []byte("k"), []byte("v"), []byte("SERIAL"), []byte("0"))
	expectErrContains(t, v, err, "positive integer")
	v, err = c.Do([]byte("SESSION"), []byte("bad guid"))
	expectErrContains(t, v, err, "ERR")

	// Takeover: a reconnecting client re-binds the GUID, learns the
	// committed frontier, and the old connection is fenced out.
	c2 := dialT(t, srv)
	v, err = c2.Do([]byte("SESSION"), []byte("proto-client"))
	if err != nil || v.Kind != resp.Integer || v.Int != 5 {
		t.Fatalf("takeover SESSION = %+v %v, want :5", v, err)
	}
	v, err = c.Do([]byte("SET"), []byte("c"), []byte("3"), []byte("SERIAL"), []byte("6"))
	expectErrContains(t, v, err, "FENCED")
	v, err = c2.Do([]byte("SET"), []byte("c"), []byte("3"), []byte("SERIAL"), []byte("6"))
	expectSimple(t, v, err, "ACK 6 OK")

	// The metrics surface counts the session activity.
	m := srv.Store().Metrics()
	if m.SessionEntries != 1 || m.SessionBinds < 2 || m.SerialReplays < 2 || m.SerialFenced < 3 {
		t.Fatalf("session metrics = entries %d binds %d replays %d fenced %d",
			m.SessionEntries, m.SessionBinds, m.SerialReplays, m.SerialFenced)
	}
}

// TestServerStampedBatchPrefixCommit forces a failure inside a stamped
// batch window and asserts the strict prefix-commit contract: serials
// before the failure ack, the failed serial reports its error, and
// later executed serials reply -RETRY so the client resends them.
func TestServerStampedBatchPrefixCommit(t *testing.T) {
	srv := newTestServer(t, Config{Sessions: 4})
	c := dialT(t, srv)
	if v, err := c.Do([]byte("SESSION"), []byte("prefix-client")); err != nil || v.Int != 0 {
		t.Fatalf("SESSION: %+v %v", v, err)
	}
	// Serial 2 is a duplicate of serial 1 within the same window: it is
	// admitted as STALE (1 <= issued), which rolls the window's commit
	// cursor logic through the non-apply path while 3 still applies.
	replies, err := c.Pipeline([][][]byte{
		{[]byte("SET"), []byte("p1"), []byte("v"), []byte("SERIAL"), []byte("1")},
		{[]byte("SET"), []byte("p2"), []byte("v"), []byte("SERIAL"), []byte("1")},
		{[]byte("SET"), []byte("p3"), []byte("v"), []byte("SERIAL"), []byte("2")},
	})
	if err != nil {
		t.Fatal(err)
	}
	expectSimple(t, replies[0], nil, "ACK 1 OK")
	expectErrContains(t, replies[1], nil, "STALE")
	expectSimple(t, replies[2], nil, "ACK 2 OK")
	// The frontier advanced through both applied serials.
	c2 := dialT(t, srv)
	if v, err := c2.Do([]byte("SESSION"), []byte("prefix-client")); err != nil || v.Int != 2 {
		t.Fatalf("frontier after window = %+v %v, want :2", v, err)
	}
}
