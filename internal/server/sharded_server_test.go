package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faster"
	"repro/internal/resp"
	"repro/internal/retry"
	"repro/internal/testutil"
)

// newShardedTestServer opens an n-shard VarLenOps ensemble, each shard
// on its own Faulty(Mem) device, and a cluster-aware front-end on a
// loopback port. The Faulty handles are returned unseeded so tests can
// poison individual shards.
func newShardedTestServer(t *testing.T, n int, cfg Config) (*Server, *faster.ShardedStore, []*device.Faulty) {
	t.Helper()
	mems := make([]*device.Mem, n)
	faulties := make([]*device.Faulty, n)
	for i := range mems {
		mems[i] = device.NewMem(device.MemConfig{})
		faulties[i] = device.NewFaulty(mems[i])
	}
	ss, err := faster.OpenSharded(faster.ShardedConfig{
		Shards: n,
		Base: faster.Config{
			Ops: faster.VarLenOps{}, IndexBuckets: 1 << 10,
			PageBits: 12, BufferPages: 8, MutableFraction: 0.5,
			WriteRetry: retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond},
			ReadRetry:  retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		},
		NewDevice: func(i int) device.Device { return faulties[i] },
	})
	if err != nil {
		for _, m := range mems {
			m.Close()
		}
		t.Fatal(err)
	}
	srv, err := ListenAndServeSharded(ss, "127.0.0.1:0", cfg)
	if err != nil {
		ss.Close()
		for _, m := range mems {
			m.Close()
		}
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		ss.Close()
		for _, m := range mems {
			m.Close()
		}
	})
	return srv, ss, faulties
}

// shardKeys returns one key per shard, probing a deterministic name
// space until every shard is covered.
func shardKeys(t *testing.T, ss *faster.ShardedStore) [][]byte {
	t.Helper()
	keys := make([][]byte, ss.NumShards())
	found := 0
	for i := 0; found < len(keys) && i < 10000; i++ {
		k := []byte(fmt.Sprintf("probe-%04d", i))
		if sh := ss.ShardFor(k); keys[sh] == nil {
			keys[sh] = k
			found++
		}
	}
	if found < len(keys) {
		t.Fatalf("probe space covered only %d/%d shards", found, len(keys))
	}
	return keys
}

// TestServerShardedRoundTrips drives the cluster front-end over four
// shards: single ops and pipelined windows spanning every shard come
// back correct and in order.
func TestServerShardedRoundTrips(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, ss, _ := newShardedTestServer(t, 4, Config{Sessions: 4})
	c := dialT(t, srv)

	// Enough keys that every shard owns several.
	owned := make([]int, 4)
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("rt-%03d", i))
		owned[ss.ShardFor(k)]++
		want := fmt.Sprintf("val-%03d", i)
		if v, err := c.Do([]byte("SET"), k, []byte(want)); err != nil || string(v.Str) != "OK" {
			t.Fatalf("SET %s: %v %v", k, v, err)
		}
	}
	for sh, n := range owned {
		if n == 0 {
			t.Fatalf("shard %d owns no test keys (distribution %v)", sh, owned)
		}
	}
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("rt-%03d", i))
		want := fmt.Sprintf("val-%03d", i)
		if v, err := c.Do([]byte("GET"), k); err != nil || string(v.Str) != want {
			t.Fatalf("GET %s = %q %v, want %q", k, v.Str, err, want)
		}
	}

	// Counters and deletes route like everything else.
	if v, err := c.Do([]byte("INCRBY"), []byte("rt-ctr"), []byte("7")); err != nil || v.Int != 7 {
		t.Fatalf("INCRBY: %+v %v", v, err)
	}
	if v, err := c.Do([]byte("DEL"), []byte("rt-000"), []byte("rt-001")); err != nil || v.Int != 2 {
		t.Fatalf("DEL: %+v %v", v, err)
	}

	// A pipelined window spanning shards executes as concurrent
	// per-shard sub-batches and rejoins in command order.
	var window [][][]byte
	for i := 2; i < 34; i++ {
		k := []byte(fmt.Sprintf("rt-%03d", i))
		if i%2 == 0 {
			window = append(window, [][]byte{[]byte("SET"), k, []byte(fmt.Sprintf("w-%03d", i))})
		} else {
			window = append(window, [][]byte{[]byte("GET"), k})
		}
	}
	replies, err := c.Pipeline(window)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range replies {
		i := j + 2
		if i%2 == 0 {
			if string(v.Str) != "OK" {
				t.Fatalf("window slot %d (SET rt-%03d) = %+v", j, i, v)
			}
		} else if want := fmt.Sprintf("val-%03d", i); string(v.Str) != want {
			t.Fatalf("window slot %d (GET rt-%03d) = %q, want %q", j, i, v.Str, want)
		}
	}
}

// TestServerShardedMGetMSet exercises the explicit multi-key window
// commands across shards: MSET fans writes out, MGET rejoins reads in
// key order with nils for misses.
func TestServerShardedMGetMSet(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, _, _ := newShardedTestServer(t, 4, Config{Sessions: 4})
	c := dialT(t, srv)

	args := [][]byte{[]byte("MSET")}
	for i := 0; i < 16; i++ {
		args = append(args, []byte(fmt.Sprintf("mk-%02d", i)), []byte(fmt.Sprintf("mv-%02d", i)))
	}
	if v, err := c.Do(args...); err != nil || string(v.Str) != "OK" {
		t.Fatalf("MSET: %+v %v", v, err)
	}

	get := [][]byte{[]byte("MGET")}
	for i := 0; i < 16; i++ {
		get = append(get, []byte(fmt.Sprintf("mk-%02d", i)))
		get = append(get, []byte(fmt.Sprintf("missing-%02d", i)))
	}
	v, err := c.Do(get...)
	if err != nil || v.Kind != resp.Array || len(v.Elems) != 32 {
		t.Fatalf("MGET = %+v %v, want 32-element array", v, err)
	}
	for i := 0; i < 16; i++ {
		hit, miss := v.Elems[2*i], v.Elems[2*i+1]
		if want := fmt.Sprintf("mv-%02d", i); string(hit.Str) != want {
			t.Fatalf("MGET slot %d = %q, want %q", 2*i, hit.Str, want)
		}
		if miss.Kind != resp.Nil {
			t.Fatalf("MGET miss slot %d = %+v, want nil", 2*i+1, miss)
		}
	}

	// Arity and bounds validation.
	if v, _ := c.Do([]byte("MGET")); !v.IsError() {
		t.Fatalf("bare MGET accepted: %+v", v)
	}
	if v, _ := c.Do([]byte("MSET"), []byte("k")); !v.IsError() {
		t.Fatalf("odd MSET accepted: %+v", v)
	}
	big := [][]byte{[]byte("MGET")}
	for i := 0; i < maxWindowCmds+1; i++ {
		big = append(big, []byte(fmt.Sprintf("b-%d", i)))
	}
	if v, _ := c.Do(big...); !v.IsError() || !strings.Contains(string(v.Str), "at most") {
		t.Fatalf("oversized MGET accepted: %+v", v)
	}
}

// TestServerShardedHealthIsolation poisons one shard's device and
// asserts the cluster health contract: the sick shard's keys degrade to
// -READONLY/-FAILED while sibling shards keep full read-write service
// on the same connection, and the admin surface names the sick shard.
func TestServerShardedHealthIsolation(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, ss, faulties := newShardedTestServer(t, 2, Config{Sessions: 4})
	c := dialT(t, srv)
	probes := shardKeys(t, ss)

	// Both shards serve while healthy.
	for sh, k := range probes {
		if v, err := c.Do([]byte("SET"), k, []byte("alive")); err != nil || string(v.Str) != "OK" {
			t.Fatalf("healthy SET on shard %d: %+v %v", sh, v, err)
		}
	}

	// Kill shard 1's device and hammer shard-1 keys until its health
	// ladder surfaces on the wire.
	faulties[1].BreakPermanently()
	payload := bytes.Repeat([]byte("z"), 128)
	sawDegraded := false
	deadline := time.Now().Add(15 * time.Second)
	for i := 0; !sawDegraded; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("shard 1 never degraded after %d writes; health=%v", i, ss.ShardHealth(1))
		}
		k := []byte(fmt.Sprintf("fill-%05d", i))
		if ss.ShardFor(k) != 1 {
			continue
		}
		v, err := c.Do([]byte("SET"), k, payload)
		if err != nil {
			t.Fatalf("write %d transport error: %v", i, err)
		}
		if v.IsError() && (strings.Contains(string(v.Str), "READONLY") ||
			strings.Contains(string(v.Str), "FAILED")) {
			sawDegraded = true
		}
	}

	// The sibling keeps full service on the very same connection: shard
	// 0 accepts writes and serves reads, and its ladder stays green.
	if v, err := c.Do([]byte("SET"), probes[0], []byte("still-writable")); err != nil || string(v.Str) != "OK" {
		t.Fatalf("healthy shard write after sibling degraded: %+v %v", v, err)
	}
	if v, err := c.Do([]byte("GET"), probes[0]); err != nil || string(v.Str) != "still-writable" {
		t.Fatalf("healthy shard read after sibling degraded: %+v %v", v, err)
	}
	if h := ss.ShardHealth(0); h != faster.Healthy {
		t.Fatalf("shard 0 health = %v, want Healthy (isolation failed)", h)
	}

	// The admin surface reports the per-shard ladder: aggregate not
	// ready, but the body names which shard is sick and how many serve.
	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()
	res, err := admin.Client().Get(admin.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Shards        int      `json:"shards"`
		ShardHealth   []string `json:"shard_health"`
		ShardsServing int      `json:"shards_serving"`
	}
	derr := json.NewDecoder(res.Body).Decode(&body)
	res.Body.Close()
	if derr != nil {
		t.Fatal(derr)
	}
	if res.StatusCode != 503 {
		t.Fatalf("healthz with a sick shard = %d, want 503", res.StatusCode)
	}
	if body.Shards != 2 || len(body.ShardHealth) != 2 || body.ShardsServing != 1 {
		t.Fatalf("healthz shard detail = %+v, want 2 shards with 1 serving", body)
	}
	if body.ShardHealth[0] != faster.Healthy.String() {
		t.Fatalf("healthz reports shard 0 as %q, want healthy", body.ShardHealth[0])
	}
}

// TestServerShardedSessionProtocol drives SESSION/SERIAL across shards:
// serials scatter over per-shard sparse tables, the connection-level
// gap check orders the whole stream, stamped batch windows span shards,
// and a re-binding takeover recovers the max-acked frontier.
func TestServerShardedSessionProtocol(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv, _, _ := newShardedTestServer(t, 4, Config{Sessions: 4})
	c := dialT(t, srv)

	if v, err := c.Do([]byte("SESSION"), []byte("cluster-client")); err != nil || v.Int != 0 {
		t.Fatalf("SESSION = %+v %v, want :0", v, err)
	}

	// Serials 1..8 on distinct keys scatter over the shards' sparse
	// serial tables; each must ack.
	for serial := 1; serial <= 8; serial++ {
		k := []byte(fmt.Sprintf("sk-%02d", serial))
		v, err := c.Do([]byte("SET"), k, []byte("v"), []byte("SERIAL"),
			[]byte(fmt.Sprintf("%d", serial)))
		expectSimple(t, v, err, fmt.Sprintf("ACK %d OK", serial))
	}

	// Re-delivering the newest serial replays its saved reply from its
	// shard's table without re-executing.
	v, err := c.Do([]byte("SET"), []byte("sk-08"), []byte("v"), []byte("SERIAL"), []byte("8"))
	expectSimple(t, v, err, "ACK 8 OK")

	// Sparse shard tables admit any forward serial, so the stream-wide
	// gap check lives on the connection: skipping ahead is rejected and
	// rolled back...
	v, err = c.Do([]byte("SET"), []byte("sk-20"), []byte("v"), []byte("SERIAL"), []byte("20"))
	expectErrContains(t, v, err, "skips")
	// ...and the next in-order serial still applies cleanly.
	v, err = c.Do([]byte("SET"), []byte("sk-09"), []byte("v"), []byte("SERIAL"), []byte("9"))
	expectSimple(t, v, err, "ACK 9 OK")

	// A stamped pipeline window spanning shards acks its serial run in
	// order through the per-shard windows.
	replies, err := c.Pipeline([][][]byte{
		{[]byte("SET"), []byte("sw-a"), []byte("1"), []byte("SERIAL"), []byte("10")},
		{[]byte("GET"), []byte("sk-09")},
		{[]byte("SET"), []byte("sw-b"), []byte("2"), []byte("SERIAL"), []byte("11")},
		{[]byte("SET"), []byte("sw-c"), []byte("3"), []byte("SERIAL"), []byte("12")},
	})
	if err != nil {
		t.Fatal(err)
	}
	expectSimple(t, replies[0], nil, "ACK 10 OK")
	if string(replies[1].Str) != "v" {
		t.Fatalf("windowed GET = %+v", replies[1])
	}
	expectSimple(t, replies[2], nil, "ACK 11 OK")
	expectSimple(t, replies[3], nil, "ACK 12 OK")

	// A window that skips ahead resolves the gap slot without touching
	// the store while in-order siblings still commit.
	replies, err = c.Pipeline([][][]byte{
		{[]byte("SET"), []byte("sw-d"), []byte("4"), []byte("SERIAL"), []byte("13")},
		{[]byte("SET"), []byte("sw-gap"), []byte("5"), []byte("SERIAL"), []byte("30")},
		{[]byte("SET"), []byte("sw-e"), []byte("6"), []byte("SERIAL"), []byte("14")},
	})
	if err != nil {
		t.Fatal(err)
	}
	expectSimple(t, replies[0], nil, "ACK 13 OK")
	expectErrContains(t, replies[1], nil, "skips")
	expectSimple(t, replies[2], nil, "ACK 14 OK")
	if v, err := c.Do([]byte("GET"), []byte("sw-gap")); err != nil || v.Kind != resp.Nil {
		t.Fatalf("gap serial mutated state: %+v %v", v, err)
	}

	// Takeover: the frontier is the max acked serial across shards.
	c2 := dialT(t, srv)
	if v, err := c2.Do([]byte("SESSION"), []byte("cluster-client")); err != nil || v.Int != 14 {
		t.Fatalf("takeover SESSION = %+v %v, want :14", v, err)
	}
	v, err = c.Do([]byte("SET"), []byte("sk-15"), []byte("v"), []byte("SERIAL"), []byte("15"))
	expectErrContains(t, v, err, "FENCED")
	v, err = c2.Do([]byte("SET"), []byte("sk-15"), []byte("v"), []byte("SERIAL"), []byte("15"))
	expectSimple(t, v, err, "ACK 15 OK")

	// A stamped DEL is a single-key operation on a cluster.
	v, err = c2.Do([]byte("DEL"), []byte("sk-01"), []byte("sk-02"), []byte("SERIAL"), []byte("16"))
	expectErrContains(t, v, err, "exactly one key")
	v, err = c2.Do([]byte("DEL"), []byte("sk-01"), []byte("SERIAL"), []byte("16"))
	expectSimple(t, v, err, "ACK 16 1")
}
