package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faster"
	"repro/internal/resp"
	"repro/internal/retry"
	"repro/internal/testutil"
)

// TestServerChaosSoak is the front-end's robustness gate (`make soak`):
// seeded chaos scenarios driven over real TCP connections under -race,
// each asserting the explicit failure contract and zero leaked
// goroutines.
//
//   - stallfree: a cold-key GET parks on injected device latency; it
//     must release the single admission token and its pooled session to
//     the io-worker pool, so a second client's hot GET completes at full
//     speed while the miss is still in flight, no handler goroutine sits
//     inside the store's pending machinery, and the parked request still
//     completes correctly out of band.
//   - readonly: the device dies mid-run; writes must start failing with
//     -READONLY while resident reads keep succeeding and /healthz goes
//     503.
//   - drain: pipelined clients are killed mid-burst, a slowloris client
//     stalls half-way through a command, and the server is drained;
//     every acknowledged SET must be readable from the store afterwards.
//   - exactlyonce: a flaky-network client drives serial-stamped INCRBYs
//     through connections that die mid-pipeline, resuming each time with
//     SESSION and resending from the server's committed frontier; every
//     seeded run must end with the exact counter value (nothing lost,
//     nothing double-applied).
func TestServerChaosSoak(t *testing.T) {
	t.Run("stallfree", soakStallFree)
	t.Run("readonly", soakReadOnly)
	t.Run("drain", soakDrain)
	t.Run("exactlyonce", soakExactlyOnce)
}

// soakSeeds returns how many seeded exactly-once chaos runs to execute:
// FASTER_EXACTLYONCE_SEEDS (the CI gate sets 100), else a quick default.
func soakSeeds(t *testing.T) int {
	if v := os.Getenv("FASTER_EXACTLYONCE_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad FASTER_EXACTLYONCE_SEEDS %q", v)
		}
		return n
	}
	if testing.Short() {
		return 3
	}
	return 8
}

func soakExactlyOnce(t *testing.T) {
	seeds := soakSeeds(t)
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			testutil.CheckGoroutines(t)
			srv := chaosServer(t)
			rng := rand.New(rand.NewSource(int64(seed)*104729 + 31))
			guid := fmt.Sprintf("chaos-%d", seed)

			const totalOps = 40
			deltas := make([]int64, totalOps+1)
			var want int64
			for i := 1; i <= totalOps; i++ {
				deltas[i] = int64(rng.Intn(9) + 1)
				want += deltas[i]
			}

			// The client loop: connect, resume from the server's committed
			// frontier, push stamped windows, and survive seeded connection
			// kills mid-pipeline. acked is the client's view; the server's
			// frontier (learned on every resume) may be ahead of it when a
			// kill swallowed in-flight acks — that is the lost-ack case the
			// protocol exists for.
			acked := uint64(0)
			for attempt := 0; acked < totalOps; attempt++ {
				if attempt > 200 {
					t.Fatal("chaos client failed to make progress")
				}
				c, err := resp.Dial(srv.Addr())
				if err != nil {
					t.Fatal(err)
				}
				c.Timeout = 10 * time.Second
				v, err := c.Do([]byte("SESSION"), []byte(guid))
				if err != nil || v.Kind != resp.Integer {
					c.Close()
					t.Fatalf("SESSION resume: %+v %v", v, err)
				}
				frontier := uint64(v.Int)
				if frontier < acked {
					c.Close()
					t.Fatalf("recovered frontier %d below client acks %d", frontier, acked)
				}
				acked = frontier

				// Push windows until this connection dies or the run is done.
				for acked < totalOps {
					n := 1 + rng.Intn(6)
					if acked+uint64(n) > totalOps {
						n = int(totalOps - acked)
					}
					cmds := make([][][]byte, 0, n)
					for j := 0; j < n; j++ {
						serial := acked + uint64(j) + 1
						cmds = append(cmds, [][]byte{
							[]byte("INCRBY"), []byte("chaos-ctr"),
							[]byte(strconv.FormatInt(deltas[serial], 10)),
							[]byte("SERIAL"), []byte(strconv.FormatUint(serial, 10)),
						})
					}
					if rng.Intn(4) == 0 {
						// Flaky network: the connection dies while replies are
						// in flight; the server may have committed any prefix
						// of the window.
						go func(die time.Duration) {
							time.Sleep(die)
							c.Conn().Close()
						}(time.Duration(rng.Intn(2)) * time.Millisecond)
						c.Pipeline(cmds)
						break
					}
					replies, err := c.Pipeline(cmds)
					if err != nil {
						break // transport died; resume on a fresh connection
					}
					for j, r := range replies {
						serial := acked + uint64(j) + 1
						wantAck := fmt.Sprintf("ACK %d ", serial)
						if r.Kind != resp.SimpleString || !strings.HasPrefix(string(r.Str), wantAck) {
							t.Fatalf("serial %d reply = %c %q, want +%s...", serial, r.Kind, r.Str, wantAck)
						}
					}
					acked += uint64(n)
				}
				c.Close()
			}

			// The final counter must reflect every delta exactly once.
			c := mustDial(t, srv)
			v, err := c.Do([]byte("INCRBY"), []byte("chaos-ctr"), []byte("0"))
			if err != nil || v.Kind != resp.Integer || v.Int != want {
				t.Fatalf("final counter = %+v %v, want :%d (lost or double-applied ops)", v, err, want)
			}
			if err := srv.Close(); err != nil {
				t.Fatalf("drain: %v", err)
			}
		})
	}
}

// chaosServer opens a Mem-backed VarLenOps store with a server for one
// seeded chaos run, torn down store-after-server via t.Cleanup.
func chaosServer(t *testing.T) *Server {
	t.Helper()
	mem := device.NewMem(device.MemConfig{})
	store, err := faster.Open(faster.Config{
		Ops: faster.VarLenOps{}, IndexBuckets: 1 << 10,
		PageBits: 13, BufferPages: 8, MutableFraction: 0.75,
		Device: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe(store, "127.0.0.1:0", Config{Sessions: 4})
	if err != nil {
		store.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		store.Close()
		mem.Close()
	})
	return srv
}

// soakStallFree is the stall detector: with one admission token and a
// device serving cold reads 2s late, a cold-miss GET must not hold the
// token, the session, or any goroutine inside the store's pending
// machinery — hot traffic keeps full speed and the miss completes out
// of band through the io-worker pool.
func soakStallFree(t *testing.T) {
	testutil.CheckGoroutines(t)
	mem := device.NewMem(device.MemConfig{})
	defer mem.Close()
	faulty := device.NewFaulty(mem)
	store, err := faster.Open(faster.Config{
		Ops: faster.VarLenOps{}, IndexBuckets: 1 << 10,
		PageBits: 12, BufferPages: 8, MutableFraction: 0.5,
		Device: faulty,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Fill past the resident region so early keys are evicted to the
	// device, then find one that actually reads cold (Pending).
	const keys = 400
	val := func(i int) []byte { return []byte(fmt.Sprintf("cold-val-%03d-%s", i, strings.Repeat("x", 40))) }
	sess := store.StartSession()
	for i := 0; i < keys; i++ {
		if st, err := sess.Upsert([]byte(fmt.Sprintf("cold-%03d", i)), faster.VarLenEncode(val(i))); st != faster.OK {
			t.Fatalf("fill %d: %v %v", i, st, err)
		}
	}
	var coldKey []byte
	coldIdx := -1
	out := make([]byte, 8+128)
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("cold-%03d", i))
		st, err := sess.Read(key, nil, out, nil)
		if st == faster.Pending {
			if _, err := sess.CompletePendingTimeout(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			coldKey, coldIdx = key, i
			break
		}
		if st != faster.OK || err != nil {
			t.Fatalf("probe %d: %v %v", i, st, err)
		}
	}
	sess.Close()
	if coldIdx < 0 {
		t.Fatal("no key was evicted; shrink the buffer")
	}

	srv, err := ListenAndServe(store, "127.0.0.1:0", Config{
		Sessions: 2, MaxInFlight: 1, OpTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Park a cold read on a device that now answers 2 seconds late.
	faulty.InjectLatency(2*time.Second, 0)
	conn1, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn1.Close()
	w1, r1 := resp.NewWriter(conn1), resp.NewReader(conn1)
	w1.WriteCommand([]byte("GET"), coldKey)
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 5*time.Second,
		func() bool { return srv.Metrics().IOAsync > 0 },
		"cold GET to be re-routed through the io-worker pool")

	// The stall detector proper: while the miss is in flight, no server
	// handler goroutine may be inside the store's pending-completion or
	// device machinery — the wait happens on a channel, with the session
	// and admission token already back in their pools.
	stacks := make([]byte, 1<<20)
	stacks = stacks[:runtime.Stack(stacks, true)]
	for _, g := range strings.Split(string(stacks), "\n\n") {
		if !strings.Contains(g, "internal/server.") {
			continue
		}
		if strings.Contains(g, "CompletePending") || strings.Contains(g, "internal/device.") {
			t.Fatalf("handler goroutine blocked in store I/O machinery:\n%s", g)
		}
	}

	// Hot traffic keeps full speed: the single admission token must be
	// free, so a resident-key GET on a second connection completes while
	// the cold miss is still parked on the slow device.
	c2, err := resp.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.Timeout = 5 * time.Second
	hotKey := []byte(fmt.Sprintf("cold-%03d", keys-1)) // tail of the log: resident
	v, err := c2.Do([]byte("GET"), hotKey)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != resp.BulkString || !bytes.Equal(v.Str, val(keys-1)) {
		t.Fatalf("hot GET under cold miss = %q (%c), want %q", v.Str, v.Kind, val(keys-1))
	}
	if fm := store.Metrics(); fm.IOInflight == 0 {
		t.Fatalf("hot GET did not overlap the cold miss (io_inflight=0, io_delivered=%d)", fm.IODelivered)
	}

	// The parked request completes correctly once the device delivers.
	conn1.SetReadDeadline(time.Now().Add(10 * time.Second))
	got, err := r1.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != resp.BulkString || !bytes.Equal(got.Str, val(coldIdx)) {
		t.Fatalf("cold GET = %q (%c), want %q", got.Str, got.Kind, val(coldIdx))
	}
	if m := srv.Metrics(); m.IOShedTimeouts != 0 || m.IOShedQueueFull != 0 {
		t.Fatalf("unexpected sheds: %+v", m)
	}
	if h := store.Health(); h != faster.Healthy {
		t.Fatalf("health = %v after a slow (not failing) device, want Healthy", h)
	}

	faulty.InjectLatency(0, 0)
	if err := srv.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func soakReadOnly(t *testing.T) {
	testutil.CheckGoroutines(t)
	mem := device.NewMem(device.MemConfig{})
	defer mem.Close()
	faulty := device.NewFaulty(mem)
	store, err := faster.Open(faster.Config{
		Ops: faster.VarLenOps{}, IndexBuckets: 1 << 10,
		PageBits: 12, BufferPages: 8, MutableFraction: 0.5,
		Device:     faulty,
		WriteRetry: retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		ReadRetry:  retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv, err := ListenAndServe(store, "127.0.0.1:0", Config{Sessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := mustDial(t, srv)

	// A hot key written and confirmed while healthy.
	if v, err := c.Do([]byte("SET"), []byte("hot"), []byte("alive")); err != nil || v.Kind != resp.SimpleString {
		t.Fatalf("hot SET: %v %v", v, err)
	}
	if v, err := c.Do([]byte("GET"), []byte("hot")); err != nil || string(v.Str) != "alive" {
		t.Fatalf("hot GET: %v %v", v, err)
	}

	// Kill the device mid-run and keep writing until the health ladder
	// surfaces as -READONLY on the wire.
	faulty.BreakPermanently()
	payload := bytes.Repeat([]byte("z"), 128)
	sawReadOnly := false
	deadline := time.Now().Add(15 * time.Second)
	for i := 0; !sawReadOnly; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("no -READONLY after %d writes; health=%v", i, store.Health())
		}
		v, err := c.Do([]byte("SET"), []byte(fmt.Sprintf("fill-%05d", i)), payload)
		if err != nil {
			t.Fatalf("write %d transport error: %v", i, err)
		}
		if v.IsError() && strings.Contains(string(v.Str), "READONLY") {
			sawReadOnly = true
		}
	}

	// Reads of the resident region keep serving.
	v, err := c.Do([]byte("GET"), []byte("hot"))
	if err != nil || v.Kind != resp.BulkString || string(v.Str) != "alive" {
		t.Fatalf("resident GET under READONLY = %q %v", v.Str, err)
	}
	if got := srv.Metrics().ReadonlyRejects; got == 0 {
		t.Fatal("ReadonlyRejects not counted")
	}

	// The readiness probe pulls the node out of rotation.
	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()
	res, err := admin.Client().Get(admin.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 503 {
		t.Fatalf("healthz under READONLY = %d, want 503", res.StatusCode)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("drain with dead device: %v", err)
	}
}

func soakDrain(t *testing.T) {
	testutil.CheckGoroutines(t)
	mem := device.NewMem(device.MemConfig{})
	defer mem.Close()
	store, err := faster.Open(faster.Config{
		Ops: faster.VarLenOps{}, IndexBuckets: 1 << 12,
		PageBits: 14, BufferPages: 16, MutableFraction: 0.75,
		Device: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv, err := ListenAndServe(store, "127.0.0.1:0", Config{
		Sessions: 4, ReadTimeout: 200 * time.Millisecond,
		IdleTimeout: 10 * time.Second, DrainTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Acked SETs: key -> value for every +OK reply actually read back by
	// a client. The drain contract is that each survives in the store.
	var (
		ackMu sync.Mutex
		acked = map[string]string{}
	)

	const (
		workers = 6
		iters   = 30
		burst   = 10
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(0x50AC + int64(w)))
			killer := w >= workers-2 // the last two die mid-pipeline
			killAt := -1
			if killer {
				killAt = 5 + rng.Intn(iters-10)
			}
			c, err := resp.Dial(srv.Addr())
			if err != nil {
				return
			}
			defer c.Close()
			c.Timeout = 5 * time.Second
			for i := 0; i < iters; i++ {
				cmds := make([][][]byte, 0, burst)
				keys := make([]string, 0, burst)
				vals := make([]string, 0, burst)
				for j := 0; j < burst; j++ {
					k := fmt.Sprintf("w%d-i%d-j%d", w, i, j)
					v := fmt.Sprintf("v-%d-%d-%d-%d", w, i, j, rng.Int63())
					keys, vals = append(keys, k), append(vals, v)
					cmds = append(cmds, [][]byte{[]byte("SET"), []byte(k), []byte(v)})
				}
				if killer && i == killAt {
					// Die mid-pipeline: the connection is torn down while
					// replies are in flight, so nothing from this burst is
					// acked (and the server must just clean up).
					go func() {
						time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
						c.Conn().Close()
					}()
					c.Pipeline(cmds)
					return
				}
				replies, err := c.Pipeline(cmds)
				if err != nil {
					return
				}
				ackMu.Lock()
				for j, r := range replies {
					if r.Kind == resp.SimpleString {
						acked[keys[j]] = vals[j]
					}
				}
				ackMu.Unlock()
			}
		}(w)
	}

	// A slowloris client: half a command, then silence. It must be
	// evicted by the per-read deadline, not pin a handler until the
	// drain.
	stall, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()
	if _, err := stall.Write([]byte("*3\r\n$3\r\nSET\r\n$9\r\nstall-key\r\n$5\r\nhe")); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 5*time.Second,
		func() bool { return srv.Metrics().DeadlineEvictions > 0 },
		"slowloris client to be evicted")

	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
	m := srv.Metrics()
	if m.ConnsActive != 0 {
		t.Fatalf("%d connections still tracked after drain", m.ConnsActive)
	}
	if m.SessionsAbandoned != 0 {
		t.Fatalf("%d sessions abandoned on a healthy store", m.SessionsAbandoned)
	}

	// Every acknowledged write must be readable straight from the store.
	sess := store.StartSession()
	defer sess.Close()
	out := make([]byte, 8+256)
	checked := 0
	for k, want := range acked {
		st, err := sess.Read([]byte(k), nil, out, nil)
		if st == faster.Pending {
			results, derr := sess.CompletePendingTimeout(5 * time.Second)
			if derr != nil || len(results) != 1 {
				t.Fatalf("read %q stalled: %v", k, derr)
			}
			st, err = results[0].Status, results[0].Err
		}
		if st != faster.OK || err != nil {
			t.Fatalf("acked key %q lost: %v %v", k, st, err)
		}
		got, ok := faster.VarLenDecode(out)
		if !ok || string(got) != want {
			t.Fatalf("acked key %q = %q, want %q", k, got, want)
		}
		checked++
	}
	if checked < workers/2*iters*burst {
		t.Fatalf("only %d acked writes to verify; chaos killed too much", checked)
	}
}

func mustDial(t *testing.T, srv *Server) *resp.Client {
	t.Helper()
	c, err := resp.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.Timeout = 10 * time.Second
	return c
}
