// Package testutil holds shared test helpers. Its centrepiece is the
// goroutine-leak assertion used by the network front-end tests and the
// crash-recovery torture harness: a drain or close that strands a
// goroutine is a bug even when every byte of data survived.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// modulePrefix scopes the leak check: only goroutines whose stack
// mentions this module are attributed to the code under test. Runtime,
// testing-framework and third-party service goroutines (there are none
// in this stdlib-only repo, but the filter is cheap insurance) are
// ignored.
const modulePrefix = "repro/"

// CheckGoroutines snapshots the goroutines alive now and registers a
// cleanup that fails t if, at the end of the test, goroutines running
// this module's code exist that were not in the snapshot. The check
// polls for a grace period first, so goroutines that are merely slow to
// exit (device callbacks, retry backoff sleeps) do not false-positive.
//
// Call it at the top of a test, before starting servers or stores:
//
//	func TestDrain(t *testing.T) {
//		testutil.CheckGoroutines(t)
//		...
//	}
func CheckGoroutines(t testing.TB) {
	t.Helper()
	base := goroutineSnapshot()
	t.Cleanup(func() {
		const grace = 5 * time.Second
		deadline := time.Now().Add(grace)
		var leaked []string
		for {
			leaked = leakedSince(base)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		sort.Strings(leaked)
		t.Errorf("%d goroutine(s) leaked after %v grace:\n\n%s",
			len(leaked), grace, strings.Join(leaked, "\n\n"))
	})
}

// NoLeakedGoroutines asserts immediately (with the same grace loop) that
// no module goroutines beyond those in base are running. It is the
// non-deferred form, for asserting mid-test — e.g. right after a drain
// completes, before the next chaos phase starts.
func NoLeakedGoroutines(t testing.TB, base map[string]string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		leaked := leakedSince(base)
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			sort.Strings(leaked)
			t.Fatalf("%d goroutine(s) leaked:\n\n%s", len(leaked), strings.Join(leaked, "\n\n"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Snapshot captures the current goroutines for NoLeakedGoroutines.
func Snapshot() map[string]string { return goroutineSnapshot() }

// goroutineSnapshot returns the current goroutines keyed by goroutine id
// line ("goroutine N [state]:" with the state stripped, so a goroutine
// that merely changed state is not treated as new).
func goroutineSnapshot() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	snap := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		id, ok := goroutineID(g)
		if !ok {
			continue
		}
		snap[id] = g
	}
	return snap
}

// goroutineID extracts "goroutine N" from a stack dump section.
func goroutineID(stack string) (string, bool) {
	if !strings.HasPrefix(stack, "goroutine ") {
		return "", false
	}
	rest := stack[len("goroutine "):]
	i := strings.IndexByte(rest, ' ')
	if i <= 0 {
		return "", false
	}
	return fmt.Sprintf("goroutine %s", rest[:i]), true
}

// leakedSince returns the stacks of module goroutines not present in
// base. The calling goroutine is never reported.
func leakedSince(base map[string]string) []string {
	var leaked []string
	self := fmt.Sprintf("goroutine %d", curGoroutineID())
	for id, stack := range goroutineSnapshot() {
		if _, ok := base[id]; ok {
			continue
		}
		if id == self {
			continue
		}
		if !strings.Contains(stack, modulePrefix) {
			continue
		}
		// The leak checker's own polling machinery.
		if strings.Contains(stack, "testutil.goroutineSnapshot") {
			continue
		}
		leaked = append(leaked, stack)
	}
	return leaked
}

// curGoroutineID parses this goroutine's id from its own stack header.
func curGoroutineID() int {
	buf := make([]byte, 64)
	buf = buf[:runtime.Stack(buf, false)]
	s := strings.TrimPrefix(string(buf), "goroutine ")
	var id int
	fmt.Sscanf(s, "%d", &id)
	return id
}
