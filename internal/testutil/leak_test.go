package testutil

import (
	"testing"
	"time"
)

func TestSnapshotFindsSelf(t *testing.T) {
	snap := goroutineSnapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	for id := range snap {
		if _, ok := goroutineID(snap[id]); !ok {
			t.Fatalf("bad snapshot entry key %q", id)
		}
	}
}

func TestNoLeakWhenGoroutineExits(t *testing.T) {
	base := Snapshot()
	done := make(chan struct{})
	go func() { // exits almost immediately: not a leak
		time.Sleep(20 * time.Millisecond)
		close(done)
	}()
	<-done
	NoLeakedGoroutines(t, base)
}

func TestLeakDetected(t *testing.T) {
	base := Snapshot()
	stop := make(chan struct{})
	defer close(stop)
	started := make(chan struct{})
	go leakyGoroutine(started, stop)
	<-started

	// Use a throwaway recorder so the expected failure doesn't fail this
	// test run.
	rec := &recorder{}
	deadline := time.Now().Add(200 * time.Millisecond)
	for {
		leaked := leakedSince(base)
		if len(leaked) > 0 || time.Now().After(deadline) {
			if len(leaked) == 0 {
				rec.Fatalf("leak not detected")
			}
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rec.failed {
		t.Fatal("leaked goroutine was not detected")
	}
}

// leakyGoroutine parks on stop; it lives in this module, so the detector
// must attribute it.
func leakyGoroutine(started chan<- struct{}, stop <-chan struct{}) {
	close(started)
	<-stop
}

type recorder struct{ failed bool }

func (r *recorder) Fatalf(string, ...any) { r.failed = true }
