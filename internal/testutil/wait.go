package testutil

import (
	"fmt"
	"testing"
	"time"
)

// WaitUntil polls cond until it returns true, failing t if timeout
// elapses first. It is the sanctioned way for tests to wait on
// asynchronous state (a metric crossing a threshold, a background
// goroutine finishing): unlike a bare time.Sleep it is deterministic on
// success — the test proceeds the moment the condition holds — and
// reports what it was waiting for on failure. See DESIGN.md, "Testing
// strategy": sleeps in tests are reserved for negative assertions over a
// bounded window and for injected chaos timing, never for
// synchronization.
func WaitUntil(t testing.TB, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	if !Eventually(timeout, cond) {
		t.Fatalf("timed out after %v waiting for %s", timeout, fmt.Sprintf(format, args...))
	}
}

// Eventually is the non-fatal form of WaitUntil: it polls cond until it
// returns true or timeout elapses, and reports whether the condition was
// met. Use it when the caller needs to run cleanup before failing.
func Eventually(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	// Back off geometrically: fast enough to catch quick transitions,
	// cheap enough to poll for seconds.
	interval := 100 * time.Microsecond
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(interval)
		if interval < 5*time.Millisecond {
			interval *= 2
		}
	}
}
