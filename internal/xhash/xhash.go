// Package xhash provides the 64-bit hash functions used by the FASTER hash
// index. The index steals bits from the hash for the bucket offset (low
// bits) and the tag (high bits), so the hash must mix all input bits into
// both ends of the word. We use the finalizer of MurmurHash3 / SplitMix64
// for 8-byte keys (the common case in the paper's YCSB workloads) and an
// FNV-1a-then-mix construction for arbitrary byte strings.
package xhash

import "encoding/binary"

// Mix64 applies a full-avalanche 64-bit finalizer (SplitMix64 / Murmur3
// fmix64 family): every input bit affects every output bit.
func Mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Uint64 hashes an 8-byte key.
func Uint64(k uint64) uint64 { return Mix64(k) }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Bytes hashes an arbitrary byte string. The FNV-1a core is finished with
// Mix64 so that short keys still avalanche into the high (tag) bits.
func Bytes(b []byte) uint64 {
	if len(b) == 8 {
		return Mix64(binary.LittleEndian.Uint64(b))
	}
	var h uint64 = fnvOffset
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return Mix64(h)
}
