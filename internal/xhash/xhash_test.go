package xhash

import (
	"encoding/binary"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestMix64Avalanche(t *testing.T) {
	// Flipping any single input bit must flip a substantial fraction of
	// output bits (the property the index relies on: offsets come from
	// the low bits, tags from the high bits).
	const samples = 200
	for bit := 0; bit < 64; bit++ {
		var totalFlips int
		for s := uint64(1); s <= samples; s++ {
			a := Mix64(s)
			b := Mix64(s ^ 1<<bit)
			totalFlips += bits.OnesCount64(a ^ b)
		}
		avg := float64(totalFlips) / samples
		if avg < 24 || avg > 40 {
			t.Fatalf("bit %d: average flips %.1f, want ~32", bit, avg)
		}
	}
}

func TestUint64Deterministic(t *testing.T) {
	if Uint64(42) != Uint64(42) {
		t.Fatal("hash not deterministic")
	}
	if Uint64(42) == Uint64(43) {
		t.Fatal("adjacent keys collide")
	}
}

func TestBytesMatchesUint64For8Bytes(t *testing.T) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], 0xdeadbeef)
	if Bytes(b[:]) != Uint64(0xdeadbeef) {
		t.Fatal("8-byte Bytes must equal Uint64 of the same key")
	}
}

func TestBytesVariableLengths(t *testing.T) {
	seen := map[uint64]string{}
	inputs := []string{"", "a", "ab", "abc", "abcdefg", "abcdefgh", "abcdefghi",
		"key-1", "key-2", "completely different key material"}
	for _, in := range inputs {
		h := Bytes([]byte(in))
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision between %q and %q", prev, in)
		}
		seen[h] = in
	}
}

// Property: low k bits of the hash are roughly uniform for sequential
// keys (the index's bucket offset source).
func TestQuickLowBitsSpread(t *testing.T) {
	f := func(start uint64) bool {
		const buckets = 64
		var counts [buckets]int
		for i := uint64(0); i < 64*buckets; i++ {
			counts[Uint64(start+i)%buckets]++
		}
		for _, c := range counts {
			if c < 32 || c > 96 { // expect 64 +- 50%
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
