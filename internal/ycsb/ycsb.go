// Package ycsb generates the workloads of Section 7.1 of the FASTER
// paper: an extended YCSB-A with 8-byte keys, 8-byte or 100-byte values,
// read/blind-update mixes denoted R:BU, and a 100% read-modify-write
// variant whose input increments a per-key sum from a user-provided input
// array (8 entries, as in the paper).
//
// Three key distributions are provided: Uniform, scrambled Zipfian with
// theta = 0.99 (the YCSB default), and the paper's shifting hot-set
// distribution, which models keys moving from cold to hot and back.
package ycsb

import (
	"math"
	"math/rand"

	"repro/internal/xhash"
)

// OpKind is the operation an access performs.
type OpKind uint8

const (
	// OpRead is a point read.
	OpRead OpKind = iota
	// OpUpsert is a blind update (YCSB "update").
	OpUpsert
	// OpRMW is a read-modify-write increment.
	OpRMW
)

// Generator produces a stream of keys from some distribution. Generators
// are not safe for concurrent use; give each worker its own (Clone).
type Generator interface {
	// Next returns the next key in [0, Keys).
	Next() uint64
	// Keys returns the size of the key space.
	Keys() uint64
	// Clone returns an independent generator with the given seed.
	Clone(seed int64) Generator
}

// ---------------------------------------------------------------------------
// Uniform
// ---------------------------------------------------------------------------

// Uniform draws keys uniformly at random.
type Uniform struct {
	n   uint64
	rng *rand.Rand
}

// NewUniform creates a uniform generator over n keys.
func NewUniform(n uint64, seed int64) *Uniform {
	return &Uniform{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Next implements Generator.
func (u *Uniform) Next() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }

// Keys implements Generator.
func (u *Uniform) Keys() uint64 { return u.n }

// Clone implements Generator.
func (u *Uniform) Clone(seed int64) Generator { return NewUniform(u.n, seed) }

// ---------------------------------------------------------------------------
// Scrambled Zipfian (theta = 0.99), after Gray et al. "Quickly generating
// billion-record synthetic databases" and the YCSB implementation.
// ---------------------------------------------------------------------------

// Zipfian draws keys from a scrambled Zipfian distribution: ranks follow
// the Zipf law, and a hash scatters the popular ranks across the key
// space (so hot keys are not clustered).
type Zipfian struct {
	n         uint64
	theta     float64
	alpha     float64
	zetan     float64
	eta       float64
	zeta2     float64
	rng       *rand.Rand
	scrambled bool
}

// DefaultTheta is the YCSB default skew.
const DefaultTheta = 0.99

// NewZipfian creates a scrambled Zipfian generator over n keys.
func NewZipfian(n uint64, theta float64, seed int64) *Zipfian {
	z := &Zipfian{n: n, theta: theta, rng: rand.New(rand.NewSource(seed)), scrambled: true}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zetaStatic computes the generalized harmonic number sum_{i=1..n} 1/i^t.
func zetaStatic(n uint64, theta float64) float64 {
	// Exact for small n; logarithmic approximation beyond, which is the
	// standard trick for billion-key spaces.
	const exactLimit = 10_000_000
	if n <= exactLimit {
		var z float64
		for i := uint64(1); i <= n; i++ {
			z += 1 / math.Pow(float64(i), theta)
		}
		return z
	}
	z := zetaStatic(exactLimit, theta)
	// Integral approximation of the tail.
	t := 1 - theta
	z += (math.Pow(float64(n), t) - math.Pow(float64(exactLimit), t)) / t
	return z
}

// Next implements Generator.
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1.0:
		rank = 0
	case uz < 1.0+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	if !z.scrambled {
		return rank
	}
	return xhash.Mix64(rank) % z.n
}

// Keys implements Generator.
func (z *Zipfian) Keys() uint64 { return z.n }

// Clone implements Generator.
func (z *Zipfian) Clone(seed int64) Generator {
	c := *z
	c.rng = rand.New(rand.NewSource(seed))
	return &c
}

// Unscrambled returns a copy that emits raw ranks (rank 0 = hottest);
// used by the cache simulations where rank order matters.
func (z *Zipfian) Unscrambled() *Zipfian {
	c := *z
	c.scrambled = false
	c.rng = rand.New(rand.NewSource(z.rng.Int63()))
	return &c
}

// ---------------------------------------------------------------------------
// Shifting hot set (§7.1, §7.5)
// ---------------------------------------------------------------------------

// HotSet models the paper's hot-set distribution: a hot fraction of the
// key space is accessed with high probability, and the hot set's position
// slides across the key space every shiftEvery accesses, modelling users
// starting and stopping sessions.
type HotSet struct {
	n          uint64
	hotKeys    uint64
	hotProb    float64
	shiftEvery uint64
	step       uint64 // keys the window slides per shift

	accesses uint64
	hotStart uint64
	rng      *rand.Rand
}

// HotSetConfig configures a HotSet generator. The paper's simulation uses
// a hot set of 1/5 of the keys accessed with 90% probability.
type HotSetConfig struct {
	Keys       uint64
	HotFrac    float64 // fraction of keys that are hot (default 0.2)
	HotProb    float64 // probability an access hits the hot set (default 0.9)
	ShiftEvery uint64  // accesses between window shifts (default Keys)
	ShiftFrac  float64 // fraction of the hot set replaced per shift (default 0.1)
}

// NewHotSet creates a hot-set generator.
func NewHotSet(cfg HotSetConfig, seed int64) *HotSet {
	if cfg.HotFrac == 0 {
		cfg.HotFrac = 0.2
	}
	if cfg.HotProb == 0 {
		cfg.HotProb = 0.9
	}
	if cfg.ShiftEvery == 0 {
		cfg.ShiftEvery = cfg.Keys
	}
	if cfg.ShiftFrac == 0 {
		cfg.ShiftFrac = 0.1
	}
	hot := uint64(float64(cfg.Keys) * cfg.HotFrac)
	if hot == 0 {
		hot = 1
	}
	step := uint64(float64(hot) * cfg.ShiftFrac)
	if step == 0 {
		step = 1
	}
	return &HotSet{
		n: cfg.Keys, hotKeys: hot, hotProb: cfg.HotProb,
		shiftEvery: cfg.ShiftEvery, step: step,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Next implements Generator.
func (h *HotSet) Next() uint64 {
	h.accesses++
	if h.accesses%h.shiftEvery == 0 {
		h.hotStart = (h.hotStart + h.step) % h.n
	}
	if h.rng.Float64() < h.hotProb {
		return (h.hotStart + uint64(h.rng.Int63n(int64(h.hotKeys)))) % h.n
	}
	// Cold access: uniform over the non-hot remainder.
	cold := uint64(h.rng.Int63n(int64(h.n - h.hotKeys)))
	return (h.hotStart + h.hotKeys + cold) % h.n
}

// Keys implements Generator.
func (h *HotSet) Keys() uint64 { return h.n }

// Clone implements Generator.
func (h *HotSet) Clone(seed int64) Generator {
	c := *h
	c.rng = rand.New(rand.NewSource(seed))
	return &c
}

// ---------------------------------------------------------------------------
// Workload mixes
// ---------------------------------------------------------------------------

// Mix describes an operation mix. The paper writes mixes as R:BU (reads :
// blind updates); RMW mixes are denoted 0:100 RMW.
type Mix struct {
	ReadPct   int // percentage of reads
	UpsertPct int // percentage of blind updates
	RMWPct    int // percentage of read-modify-writes
}

// Common mixes from the evaluation.
var (
	MixRMW100    = Mix{RMWPct: 100}                // "0:100 RMW"
	Mix0R100BU   = Mix{UpsertPct: 100}             // "0:100"
	Mix50R50BU   = Mix{ReadPct: 50, UpsertPct: 50} // "50:50"
	Mix100R      = Mix{ReadPct: 100}               // "100:0"
	MixYCSBNames = map[string]Mix{
		"0:100 RMW": MixRMW100,
		"0:100":     Mix0R100BU,
		"50:50":     Mix50R50BU,
		"100:0":     Mix100R,
	}
)

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
}

// Workload pairs a key generator with an operation mix.
type Workload struct {
	gen Generator
	mix Mix
	rng *rand.Rand
}

// NewWorkload builds a workload; not safe for concurrent use (Clone per
// worker).
func NewWorkload(gen Generator, mix Mix, seed int64) *Workload {
	return &Workload{gen: gen, mix: mix, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next operation.
func (w *Workload) Next() Op {
	k := w.gen.Next()
	p := w.rng.Intn(100)
	switch {
	case p < w.mix.ReadPct:
		return Op{Kind: OpRead, Key: k}
	case p < w.mix.ReadPct+w.mix.UpsertPct:
		return Op{Kind: OpUpsert, Key: k}
	default:
		return Op{Kind: OpRMW, Key: k}
	}
}

// KeySpace returns the number of distinct keys the workload draws from.
func (w *Workload) KeySpace() uint64 { return w.gen.Keys() }

// Clone returns an independent workload stream.
func (w *Workload) Clone(seed int64) *Workload {
	return &Workload{gen: w.gen.Clone(seed), mix: w.mix, rng: rand.New(rand.NewSource(seed ^ 0x9e3779b9))}
}

// InputArray returns the paper's 8-entry RMW input array: RMW updates
// "increment a value by a number from a user-provided input array with 8
// entries".
func InputArray() [8]uint64 {
	return [8]uint64{1, 2, 3, 5, 7, 11, 13, 17}
}
