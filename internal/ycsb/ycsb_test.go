package ycsb

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestUniformCoversKeySpace(t *testing.T) {
	g := NewUniform(100, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 10_000; i++ {
		k := g.Next()
		if k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform covered only %d/100 keys", len(seen))
	}
}

func TestUniformIsRoughlyFlat(t *testing.T) {
	g := NewUniform(10, 7)
	counts := make([]int, 10)
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	for k, c := range counts {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Fatalf("key %d frequency %.3f, want ~0.10", k, frac)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	// Unscrambled ranks: rank 0 must be the most frequent, and the top
	// ranks must dominate (theta=0.99 means ~top-20% gets most traffic).
	g := NewZipfian(1000, DefaultTheta, 42).Unscrambled()
	counts := make([]int, 1000)
	const n = 200_000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	if counts[0] < counts[1] || counts[0] < counts[500] {
		t.Fatalf("rank 0 not hottest: %d vs %d vs %d", counts[0], counts[1], counts[500])
	}
	var top10 int
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if frac := float64(top10) / n; frac < 0.25 {
		t.Fatalf("top-10 ranks got %.3f of traffic, want >= 0.25 for zipf 0.99", frac)
	}
}

func TestZipfianScrambleSpreadsHotKeys(t *testing.T) {
	g := NewZipfian(1<<20, DefaultTheta, 1)
	counts := map[uint64]int{}
	for i := 0; i < 100_000; i++ {
		counts[g.Next()]++
	}
	// Collect the 10 hottest scrambled keys; they must not be clustered
	// in a narrow range (scrambling spreads them).
	type kv struct {
		k uint64
		c int
	}
	var all []kv
	for k, c := range counts {
		all = append(all, kv{k, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
	var lo, hi uint64 = math.MaxUint64, 0
	for _, e := range all[:10] {
		if e.k < lo {
			lo = e.k
		}
		if e.k > hi {
			hi = e.k
		}
	}
	if hi-lo < 1<<16 {
		t.Fatalf("top-10 hot keys clustered in range %d", hi-lo)
	}
}

func TestZipfianInRange(t *testing.T) {
	f := func(seed int64) bool {
		g := NewZipfian(257, DefaultTheta, seed)
		for i := 0; i < 200; i++ {
			if g.Next() >= 257 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHotSetConcentration(t *testing.T) {
	g := NewHotSet(HotSetConfig{Keys: 1000, HotFrac: 0.2, HotProb: 0.9, ShiftEvery: 1 << 30}, 3)
	hot := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if g.Next() < 200 { // window starts at 0 and never shifts here
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot fraction %.3f, want ~0.90", frac)
	}
}

func TestHotSetShifts(t *testing.T) {
	g := NewHotSet(HotSetConfig{Keys: 1000, ShiftEvery: 1000, ShiftFrac: 0.5}, 4)
	firstWindow := map[uint64]int{}
	for i := 0; i < 900; i++ {
		firstWindow[g.Next()]++
	}
	// Drive several shifts.
	for i := 0; i < 5000; i++ {
		g.Next()
	}
	if g.hotStart == 0 {
		t.Fatal("hot window never shifted")
	}
}

func TestMixProportions(t *testing.T) {
	w := NewWorkload(NewUniform(100, 1), Mix50R50BU, 2)
	var reads, upserts, rmws int
	const n = 100_000
	for i := 0; i < n; i++ {
		switch w.Next().Kind {
		case OpRead:
			reads++
		case OpUpsert:
			upserts++
		case OpRMW:
			rmws++
		}
	}
	if frac := float64(reads) / n; frac < 0.48 || frac > 0.52 {
		t.Fatalf("read fraction %.3f, want ~0.50", frac)
	}
	if rmws != 0 {
		t.Fatalf("unexpected RMWs in 50:50 mix: %d", rmws)
	}
}

func TestMixRMW100(t *testing.T) {
	w := NewWorkload(NewUniform(10, 1), MixRMW100, 5)
	for i := 0; i < 1000; i++ {
		if op := w.Next(); op.Kind != OpRMW {
			t.Fatalf("op %v in 100%% RMW mix", op.Kind)
		}
	}
}

func TestClonesAreIndependent(t *testing.T) {
	w := NewWorkload(NewZipfian(1000, DefaultTheta, 1), Mix50R50BU, 1)
	c1 := w.Clone(100)
	c2 := w.Clone(200)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Next().Key == c2.Next().Key {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("clones emitted %d/100 identical keys; streams not independent", same)
	}
}

func TestInputArrayMatchesPaper(t *testing.T) {
	arr := InputArray()
	if len(arr) != 8 {
		t.Fatalf("input array has %d entries, want 8", len(arr))
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	g := NewZipfian(250_000_000, DefaultTheta, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkUniformNext(b *testing.B) {
	g := NewUniform(250_000_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
