#!/bin/sh
# Full local gate: build, vet, tests, and the race detector over the
# library packages. This is exactly what CI should run; `make check`
# delegates here.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/...

# Crash/torn-write torture matrix: fixed seeds, 100 crash points, race
# detector on (the fault-domain hardening acceptance gate).
FASTER_TORTURE_POINTS=100 go test -race -run TestCrashRecoveryTorture -count=1 ./internal/faster/

# Server chaos soak: seeded overload/read-only/drain scenarios against
# the RESP front-end under the race detector, asserting zero leaked
# goroutines (the network fault-domain acceptance gate).
go test -race -run TestServerChaosSoak -count=1 ./internal/server/

# Linearizability scenario matrix: seeded concurrent schedules across
# the store's hot paths, history-checked under the race detector.
# Includes the compaction scenario (copy-forward + epoch-safe truncation
# racing reads, RMWs and pending I/O).
go test -race -run 'TestLinearizable' -count=1 -timeout 300s ./internal/linearize/

# Space-reclamation gate: compaction correctness (concurrent RMWs,
# recovery with Begin > 0, crash torture mid-compaction) and the
# epoch-safe truncation ordering fixes, under the race detector.
go test -race -run 'TestCompact|TestBackgroundCompaction|TestTruncate' -count=1 ./internal/faster/ ./internal/hlog/

# Exactly-once torture: 100 seeded crash/retry schedules against the
# durable session table (duplicate deliveries, lost acks, mid-run
# checkpoints, recovery) plus the flaky-network chaos client against the
# RESP front-end, all under the race detector. Zero double-applies and
# zero lost acknowledgements are the acceptance bar.
FASTER_EXACTLYONCE_SEEDS=100 go test -race -run 'TestExactlyOnceCrashRetryTorture|TestServerChaosSoak/exactlyonce' -count=1 -timeout 600s ./internal/faster/ ./internal/server/

# Session-table crash matrix and the checkpoint/compaction interleaving
# regression: kills between the table rename and the meta rename (and at
# the torn/missing-table points) must recover the previous generation's
# frontier exactly, and a checkpoint racing a compaction must never
# swallow the compacted prefix.
go test -race -run 'TestSerialTableCrashMatrix|TestSessionTableCheckpointRecover|TestCheckpointCompactRace' -count=1 ./internal/faster/

# Stall-free pending-I/O gate: io-worker pool lifecycle (leak and drain
# assertions, deadline/queue-full sheds, seeded chaos soak) and the
# server-side stall detector (no session goroutine may block in device
# calls on the miss path), under the race detector.
go test -race -run 'TestIOPool|TestServerChaosSoak/stallfree' -count=1 -timeout 300s ./internal/faster/ ./internal/server/

# Open-loop SLO smoke: constant-arrival-rate load over a larger-than-
# memory store, no-chaos vs 100ms device latency spikes — hot (resident)
# p999 must ride through the chaos while cold misses slow, with exact
# shed accounting and the health ladder untouched. `make bench-openloop`
# emits the full BENCH_07.json curves.
go test -race -run TestOpenLoopSmoke -count=1 -timeout 300s ./internal/bench/

# Sharded-store gate: the sharded linearizability matrix (cross-shard
# histories and exactly-once replay over 4 shards), the per-shard crash
# torture (one shard dies and recovers while its siblings serve), and
# the cluster-aware RESP front-end (multi-shard fan-out windows,
# MGET/MSET, per-shard health isolation, session fencing), all under
# the race detector.
go test -race -run 'TestLinearizableSharded|TestLinearizableExactlyOnceSharded' -count=1 -timeout 300s ./internal/linearize/
go test -race -run TestShardedCrashTorture -count=1 -timeout 300s ./internal/faster/
go test -race -run 'TestServerSharded' -count=1 ./internal/server/

# Read-cache gate: fill/hit/invalidation/eviction correctness, the
# coalesced cold-read counter, warm-cache checkpoint/crash recovery
# (tagged index entries must map back to hlog addresses), and the CLOCK
# simulator validation, under the race detector. The linearize tier above
# already picks up TestLinearizableReadCache via its TestLinearizable run.
go test -race -run 'TestReadCache|TestIOCoalescedReads|TestCrashRecoveryWarmReadCache' -count=1 -timeout 300s ./internal/faster/

# Mutation-gate seeds: the torn, unsynced session table must be flagged
# by the dedup-aware linearize model, a dropped pending-I/O re-enqueue
# (acknowledged-but-lost RMW deferral) by the async-workload checker,
# and the two sharded seeds — a router consulting a stale pre-rehash
# shard map and a checkpoint skipping one shard's manifest fsync — by
# the sharded linearize + torture tier, and a writer that links its
# record behind a cached copy instead of republishing the index entry
# (stale read-cache serves) by the read-cache scenario (the rest of the
# gate runs via `make mutation-gate`).
go test -tags mutate -run 'TestMutationGateSkipSerialFsync|TestMutationGateDroppedReenqueue|TestMutationGateRouteStaleMap|TestMutationGateSkipShardFsync|TestMutationGateSkipCacheInvalidate' -count=1 -timeout 300s ./internal/faster/

# Fuzz smoke over the wire codecs: a few seconds per target beyond the
# committed seed corpora. `make fuzz` / `make verify` run longer.
go test -fuzz FuzzReadCommand -fuzztime 5s -run '^$' ./internal/resp/
go test -fuzz FuzzReadReply -fuzztime 5s -run '^$' ./internal/resp/
go test -fuzz FuzzVarLenFraming -fuzztime 5s -run '^$' ./internal/faster/

# Allocation-regression gate: the uint64 fast paths (Read, Upsert,
# in-place RMW, ExecBatch) must stay at 0 allocs/op in steady state.
go test -run TestHotPathZeroAlloc -count=1 ./internal/faster/
