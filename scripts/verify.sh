#!/bin/sh
# Release gate: a superset of check.sh. Adds the mutation-tagged build,
# the linearizability scenario matrix, the mutation gate, fuzz smoke,
# and a per-package coverage floor. `make verify` delegates here.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...

# The mutate build tag compiles the seeded-bug variants in; both tag
# sets must stay buildable and vet-clean.
go vet -tags mutate ./...

go test ./...
go test -race ./internal/...

# Linearizability scenario matrix: seeded concurrent schedules across
# the store's hot paths (in-memory, read-only copy, fuzzy-region RMW,
# pending I/O, index resize, checkpoint/recover), history-checked under
# the race detector inside a bounded wall-clock budget.
go test -race -run 'TestLinearizable' -count=1 -timeout 300s ./internal/linearize/

# Mutation gate: prove the harness flags each seeded bug (torn 64-bit
# write, skipped epoch bump, double-applied RMW) with a minimized
# counterexample. Runs WITHOUT -race: the seeded bugs are value-level
# concurrency faults expressed through atomics, so the race detector is
# structurally blind to them — the history checker must catch them, and
# race-detector scheduling would only narrow the windows it needs.
go test -tags mutate -run 'TestMutationGate' -count=1 -v -timeout 600s ./internal/faster/

# Fuzz smoke: a few seconds per codec target beyond the committed seed
# corpora (the corpora themselves already ran as regressions above).
go test -fuzz FuzzReadCommand -fuzztime 5s -run '^$' ./internal/resp/
go test -fuzz FuzzReadReply -fuzztime 5s -run '^$' ./internal/resp/
go test -fuzz FuzzVarLenFraming -fuzztime 5s -run '^$' ./internal/faster/

# Per-package coverage floor: fail if a package regresses below the
# recorded baseline (scripts/coverage_baseline.txt).
while read -r pkg floor; do
    case "$pkg" in '' | '#'*) continue ;; esac
    out=$(go test -cover -count=1 "$pkg")
    cov=$(printf '%s\n' "$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p')
    printf 'coverage %-28s %6s%%  (floor %s%%)\n' "$pkg" "$cov" "$floor"
    awk -v c="$cov" -v f="$floor" 'BEGIN { exit !(c + 0 >= f + 0) }' || {
        echo "FAIL: $pkg coverage $cov% is below the recorded baseline $floor%" >&2
        exit 1
    }
done <scripts/coverage_baseline.txt

echo "verify: all gates green"
